package peer

import (
	"encoding/json"
	"fmt"
	"path/filepath"
	"runtime"
	"sync"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/ledger"
	"socialchain/internal/metrics"
	"socialchain/internal/msp"
	"socialchain/internal/obs"
	"socialchain/internal/statedb"
	"socialchain/internal/storage"
)

// Peer is one endorsing/committing node. Every peer holds a full copy of
// the ledger and world state and independently validates every block, as in
// the paper's Figure 1 where all endorsement peers act as validators.
//
// A peer opened with Config.DataDir is durable: its world state, history
// and indexes live on WAL-backed persist engines and every committed
// block lands in a block log before its writes touch state. Reopening the
// same directory recovers the peer — the block log replays through the
// same validate-then-commit split a live delivery takes (see recover) —
// after which SyncFrom catches up any tail the log missed.
type Peer struct {
	id        string
	channelID string
	signer    *msp.Signer

	ledger   *ledger.Ledger
	blockLog *ledger.Log // nil for in-memory peers
	state    *statedb.DB
	history  *statedb.HistoryDB
	registry *chaincode.Registry
	policy   msp.Policy
	watchdog *Watchdog

	// verifyCache memoises signature verdicts across the commit, sync and
	// recovery paths: a synced or replayed block re-validates envelopes and
	// endorsements this peer (or its previous incarnation) already checked.
	verifyCache *msp.VerifyCache

	// commitMu serialises the commit pipeline (block log → history →
	// state → in-memory chain) so the durable artefacts can never record
	// two competing blocks at one height.
	commitMu sync.Mutex

	mu          sync.Mutex
	commitWait  map[string][]chan ledger.ValidationCode
	subscribers []chan chaincode.Event

	// Observability instruments (always non-nil: a nil Config.Obs hands
	// back dangling atomics, so the hot path never branches).
	obsEndorse  *obs.Histogram // endorse_exec: simulate + sign one proposal
	obsValidate *obs.Histogram // validate: the validation half of a block
	obsCommit   *obs.Histogram // commit: the durable half of a block
	obsE2E      *obs.Histogram // submission timestamp -> commit, per tx
	txValid     *metrics.Counter
	txInvalid   *metrics.Counter
	blocks      *metrics.Counter
	slowTraces  *obs.TraceRing // nil unless the node wires a ring
}

// Config assembles a peer.
type Config struct {
	ID        string
	ChannelID string
	Signer    *msp.Signer
	// Registry is the deployed chaincode set (shared across peers —
	// chaincode instances are stateless; all state flows through the stub).
	Registry *chaincode.Registry
	// Policy validates endorsements at commit; nil panics (the network
	// assembly always supplies one).
	Policy msp.Policy
	// Watchdog records endorsement misbehaviour (may be shared; nil creates
	// a private one).
	Watchdog *Watchdog
	// State selects the key-value engine backing this peer's world state
	// and history database (zero value = the sharded default).
	State storage.Config
	// DataDir, when non-empty, makes the peer durable: it forces the
	// persist engine rooted at this directory for state/history/indexes
	// and opens the block log at DataDir/blocks.wal, recovering whatever a
	// previous run left there. Overrides State.Engine and State.Dir.
	DataDir string
	// Indexes declares the secondary indexes the world state maintains
	// (nil = none). Index reads feed endorsement results, so every peer
	// of a channel must run the same list.
	Indexes []statedb.IndexSpec
	// VerifyCacheSize bounds the peer's signature verify cache
	// (0 selects msp.DefaultVerifyCacheSize).
	VerifyCacheSize int
	// Obs receives this peer's metrics: per-stage latency histograms,
	// commit counters, chain height and verify-cache hit rates. nil keeps
	// the peer fully functional with unregistered (dangling) instruments.
	Obs *obs.Registry
	// SlowTraces, when non-nil, retains recent slow commits (trace ID +
	// stage timings) for the /statusz ring.
	SlowTraces *obs.TraceRing
}

// New creates a peer anchored by a genesis block — or, when cfg.DataDir
// names a directory with a previous run's data, recovers that peer.
func New(cfg Config) (*Peer, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("peer %s: nil endorsement policy", cfg.ID)
	}
	wd := cfg.Watchdog
	if wd == nil {
		wd = NewWatchdog(3)
	}
	st := cfg.State
	if cfg.DataDir != "" {
		st.Engine = storage.EnginePersist
		st.Dir = cfg.DataDir
	}
	state, err := statedb.NewIndexedWith(st, cfg.Indexes...)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", cfg.ID, err)
	}
	history, err := statedb.NewHistoryDBWith(st)
	if err != nil {
		state.Close()
		return nil, fmt.Errorf("peer %s: %w", cfg.ID, err)
	}
	p := &Peer{
		id:          cfg.ID,
		channelID:   cfg.ChannelID,
		signer:      cfg.Signer,
		ledger:      ledger.New(),
		state:       state,
		history:     history,
		registry:    cfg.Registry,
		policy:      cfg.Policy,
		watchdog:    wd,
		verifyCache: msp.NewVerifyCache(cfg.VerifyCacheSize),
		commitWait:  make(map[string][]chan ledger.ValidationCode),
		slowTraces:  cfg.SlowTraces,
	}
	const stageHelp = "Per-stage transaction pipeline latency."
	p.obsEndorse = cfg.Obs.Histogram("tx_stage_seconds", stageHelp, nil, obs.L("stage", "endorse_exec"))
	p.obsValidate = cfg.Obs.Histogram("tx_stage_seconds", stageHelp, nil, obs.L("stage", "validate"))
	p.obsCommit = cfg.Obs.Histogram("tx_stage_seconds", stageHelp, nil, obs.L("stage", "commit"))
	p.obsE2E = cfg.Obs.Histogram("tx_commit_e2e_seconds", "Submission timestamp to commit, per transaction.", nil)
	p.txValid = cfg.Obs.Counter("peer_txs_committed_total", "Transactions committed VALID.")
	p.txInvalid = cfg.Obs.Counter("peer_txs_invalid_total", "Transactions committed with a non-VALID flag.")
	p.blocks = cfg.Obs.Counter("peer_blocks_committed_total", "Blocks committed on the live path.")
	cfg.Obs.GaugeFunc("chain_height", "Current chain height (blocks).", func() float64 {
		return float64(p.ledger.Height())
	})
	// component distinguishes this cache from the consensus replica's,
	// which registers the same family on the same node-scoped registry.
	p.verifyCache.Register(cfg.Obs.With(obs.L("component", "peer")))
	// LSM engine internals (sstables, compaction backlog, bloom hit
	// rates) for the durable stores; no-ops on in-memory engines. The
	// store label splits the world state from the history database.
	p.state.RegisterStorage(cfg.Obs.With(obs.L("store", "state")))
	p.history.RegisterStorage(cfg.Obs.With(obs.L("store", "history")))
	if cfg.DataDir != "" {
		blockLog, err := ledger.OpenLog(filepath.Join(cfg.DataDir, "blocks.wal"))
		if err != nil {
			p.closeStores()
			return nil, fmt.Errorf("peer %s: %w", cfg.ID, err)
		}
		p.blockLog = blockLog
		if err := p.recover(); err != nil {
			p.Close()
			return nil, err
		}
		if p.ledger.Height() > 0 {
			return p, nil // recovered an existing chain, genesis included
		}
	}
	// The genesis block is identical on every peer: fixed zero timestamp
	// (the header hash covers only number, prev-hash and data hash, so the
	// chain stays consistent regardless).
	genesis := ledger.NewBlock(0, [32]byte{}, nil, time.Time{})
	if p.blockLog != nil {
		if err := p.blockLog.Append(genesis); err != nil {
			p.Close()
			return nil, fmt.Errorf("peer %s: genesis: %w", cfg.ID, err)
		}
	}
	if err := p.ledger.Append(genesis); err != nil {
		p.Close()
		return nil, fmt.Errorf("peer %s: genesis: %w", cfg.ID, err)
	}
	return p, nil
}

// Open opens (or creates) a durable peer rooted at cfg.DataDir. It is
// New with the data directory required: use it where resuming from disk
// is the point, so a missing directory configuration fails loudly instead
// of silently building a RAM-only peer.
func Open(cfg Config) (*Peer, error) {
	if cfg.DataDir == "" {
		return nil, fmt.Errorf("peer %s: Open requires Config.DataDir", cfg.ID)
	}
	return New(cfg)
}

// recover replays the block log against the recovered world state. Blocks
// at or below the state's savepoint already have their writes applied —
// the savepoint rides inside each block's state batch, atomically — so
// they only rebuild the in-memory chain; anything after the savepoint
// (committed to the log but not yet to state when the process died)
// re-runs the full validate-then-commit split, with recorded flags
// cross-checked against re-validation.
func (p *Peer) recover() error {
	blocks := p.blockLog.Blocks()
	sp, hasSP := p.state.Savepoint()
	if len(blocks) == 0 {
		if hasSP {
			// Recovered world state says blocks were applied, but the log
			// holds none: starting a fresh chain over stale state would be
			// silent corruption.
			return fmt.Errorf("peer %s: empty block log but state savepoint %d (block log lost)", p.id, sp)
		}
		return nil
	}
	if hasSP && sp > blocks[len(blocks)-1].Header.Number {
		// The commit pipeline logs a block before applying its state, so
		// under kill/restart the log can trail the savepoint only if the
		// log file itself lost committed bytes — refuse to run on a state
		// we cannot re-derive.
		return fmt.Errorf("peer %s: state savepoint %d is ahead of block log height %d (block log lost committed records)",
			p.id, sp, blocks[len(blocks)-1].Header.Number+1)
	}
	for _, b := range blocks {
		if b.Header.Number == 0 || (hasSP && b.Header.Number <= sp) {
			if err := p.ledger.Append(b); err != nil {
				return fmt.Errorf("peer %s: recover block %d: %w", p.id, b.Header.Number, err)
			}
			continue
		}
		if err := p.replayLoggedBlock(b); err != nil {
			return fmt.Errorf("peer %s: recover block %d: %w", p.id, b.Header.Number, err)
		}
	}
	return nil
}

// closeStores closes the state-bearing engines (not the block log).
func (p *Peer) closeStores() error {
	err := p.state.Close()
	if herr := p.history.Close(); err == nil {
		err = herr
	}
	return err
}

// Close flushes and closes the peer's durable resources. In-memory peers
// close trivially. Idempotent per underlying store.
func (p *Peer) Close() error {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	err := p.closeStores()
	if p.blockLog != nil {
		if lerr := p.blockLog.Close(); err == nil {
			err = lerr
		}
	}
	return err
}

// Sync flushes the peer's durable state to stable storage.
func (p *Peer) Sync() error {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	err := p.state.Sync()
	if herr := p.history.Sync(); err == nil {
		err = herr
	}
	if p.blockLog != nil {
		if lerr := p.blockLog.Sync(); err == nil {
			err = lerr
		}
	}
	return err
}

// ID returns the peer's name.
func (p *Peer) ID() string { return p.id }

// Identity returns the peer's signing identity.
func (p *Peer) Identity() msp.Identity { return p.signer.Identity }

// Ledger exposes the peer's chain.
func (p *Peer) Ledger() *ledger.Ledger { return p.ledger }

// State exposes the peer's world state.
func (p *Peer) State() *statedb.DB { return p.state }

// History exposes the peer's history database.
func (p *Peer) History() *statedb.HistoryDB { return p.history }

// Watchdog exposes the misbehaviour tracker.
func (p *Peer) Watchdog() *Watchdog { return p.watchdog }

// VerifyCacheStats reports the peer's verify-cache hit/miss counters.
func (p *Peer) VerifyCacheStats() (hits, misses int64) {
	return p.verifyCache.Hits(), p.verifyCache.Misses()
}

// Endorse simulates a proposal against this peer's current state and signs
// the resulting read/write set, implementing the paper's "each peer
// executes the smart contract independently".
func (p *Peer) Endorse(prop *Proposal) (*ProposalResponse, error) {
	// The canonical bytes are recomputed every time (cheap hashing, and
	// tampering after signing must stay detectable) but the ed25519 check
	// runs through this peer's verify cache, so a proposal resubmitted
	// after an ordering backlog rejection verifies only once here.
	if !p.verifyCache.Verify(prop.Creator, prop.SigningBytes(), prop.Signature) {
		return nil, fmt.Errorf("peer %s: proposal %s: bad client signature", p.id, prop.TxID)
	}
	cc, ok := p.registry.Get(prop.Chaincode)
	if !ok {
		return nil, fmt.Errorf("peer %s: unknown chaincode %q", p.id, prop.Chaincode)
	}
	sim := chaincode.NewSimulator(chaincode.TxContext{
		TxID:      prop.TxID,
		ChannelID: prop.ChannelID,
		Creator:   prop.Creator,
		Timestamp: prop.Timestamp,
	}, prop.Chaincode, p.state, p.history).WithRegistry(p.registry)
	start := time.Now()
	resp, err := cc.Invoke(sim, prop.Fn, prop.Args)
	if err != nil {
		return nil, fmt.Errorf("peer %s: chaincode %s.%s: %w", p.id, prop.Chaincode, prop.Fn, err)
	}
	p.obsEndorse.Observe(time.Since(start))
	return p.respond(prop.TxID, sim, resp)
}

// EndorseBatch is the batch endorsement entrypoint: every call of the
// proposal executes on one simulator (chaincode.InvokeBatch), yielding a
// single merged read/write set that the peer signs once. One endorsement
// round-trip and one signature therefore cover an entire ingest batch,
// instead of one of each per record. The response is the JSON array of
// per-call responses.
func (p *Peer) EndorseBatch(prop *BatchProposal) (*ProposalResponse, error) {
	if len(prop.Calls) == 0 {
		return nil, fmt.Errorf("peer %s: batch proposal %s: empty call list", p.id, prop.TxID)
	}
	// Cached like Endorse: recomputed bytes, memoised ed25519 verdict.
	if !p.verifyCache.Verify(prop.Creator, prop.SigningBytes(), prop.Signature) {
		return nil, fmt.Errorf("peer %s: batch proposal %s: bad client signature", p.id, prop.TxID)
	}
	sim := chaincode.NewSimulator(chaincode.TxContext{
		TxID:      prop.TxID,
		ChannelID: prop.ChannelID,
		Creator:   prop.Creator,
		Timestamp: prop.Timestamp,
	}, prop.Calls[0].Chaincode, p.state, p.history).WithRegistry(p.registry)
	start := time.Now()
	responses, err := sim.InvokeBatch(prop.Calls)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", p.id, err)
	}
	p.obsEndorse.Observe(time.Since(start))
	resp, err := json.Marshal(responses)
	if err != nil {
		return nil, fmt.Errorf("peer %s: marshal batch responses: %w", p.id, err)
	}
	return p.respond(prop.TxID, sim, resp)
}

// respond signs a finished simulation into a proposal response.
func (p *Peer) respond(txID string, sim *chaincode.Simulator, resp []byte) (*ProposalResponse, error) {
	rw := sim.RWSet()
	rwJSON, err := json.Marshal(rw)
	if err != nil {
		return nil, fmt.Errorf("peer %s: marshal rwset: %w", p.id, err)
	}
	digest := rw.Digest(resp)
	var events []ledger.Event
	for _, e := range sim.Events() {
		events = append(events, ledger.Event{Name: e.Name, Payload: e.Payload})
	}
	return &ProposalResponse{
		TxID:      txID,
		Response:  resp,
		RWSetJSON: rwJSON,
		Events:    events,
		Endorsement: msp.Endorsement{
			Endorser:  p.signer.Identity,
			Digest:    digest,
			Signature: p.signer.Sign(digest),
		},
	}, nil
}

// WaitForCommit returns a channel that receives the validation flag when
// txID commits on this peer. The channel is buffered; the caller need not
// drain it before the commit happens.
func (p *Peer) WaitForCommit(txID string) <-chan ledger.ValidationCode {
	ch := make(chan ledger.ValidationCode, 1)
	p.mu.Lock()
	p.commitWait[txID] = append(p.commitWait[txID], ch)
	p.mu.Unlock()
	return ch
}

// CancelWait drops the commit waiters registered for txID — callers whose
// submission was rejected by ordering deregister here so abandoned
// transaction IDs do not accumulate in the wait map.
func (p *Peer) CancelWait(txID string) {
	p.mu.Lock()
	delete(p.commitWait, txID)
	p.mu.Unlock()
}

// SubscribeEvents returns a channel receiving chaincode events of valid
// committed transactions.
func (p *Peer) SubscribeEvents(buffer int) <-chan chaincode.Event {
	if buffer <= 0 {
		buffer = 256
	}
	ch := make(chan chaincode.Event, buffer)
	p.mu.Lock()
	p.subscribers = append(p.subscribers, ch)
	p.mu.Unlock()
	return ch
}

// CommitBatch validates and commits one ordered batch of transactions as
// the next block, in Fabric's validate-then-commit split. The stateless
// checks (client signature, endorsement signatures, policy) are
// independent per transaction and run in parallel over a worker pool; the
// MVCC read-version pass then runs serially in block order — read/write-
// set conflict detection is what keeps the parallel validation
// serializable — and all surviving write sets land in the state engine as
// one block-level batch. It returns the block.
//
// The block timestamp is derived from the batch (the latest transaction
// timestamp), not from the committing peer's clock: every replica
// committing the same ordered batch assembles a byte-identical block, so
// independently running processes converge on one chain, not merely on
// equivalent chains.
func (p *Peer) CommitBatch(txs []ledger.Transaction) (*ledger.Block, error) {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	number := p.ledger.Height()
	block := ledger.NewBlock(number, p.ledger.TipHash(), txs, batchTimestamp(txs))
	vStart := time.Now()
	flags, updates, validIdx, err := p.validateBlock(number, block.Txs, nil)
	if err != nil {
		return nil, err
	}
	vDur := time.Since(vStart)
	p.obsValidate.Observe(vDur)
	copy(block.Metadata.Flags, flags)
	cStart := time.Now()
	if err := p.commitValidated(block, updates, validIdx, true); err != nil {
		return nil, err
	}
	cDur := time.Since(cStart)
	p.obsCommit.Observe(cDur)
	p.blocks.Inc()
	committedAt := time.Now()
	for i := range block.Txs {
		tx := &block.Txs[i]
		if flags[i] == ledger.Valid {
			p.txValid.Inc()
		} else {
			p.txInvalid.Inc()
		}
		e2e := committedAt.Sub(tx.Timestamp)
		p.obsE2E.Observe(e2e)
		if tx.Trace != "" {
			p.slowTraces.Observe(obs.TraceRecord{
				Trace: tx.Trace, TxID: tx.ID, Channel: p.channelID, Block: number,
				E2E: e2e, Validate: vDur, Commit: cDur,
			})
		}
	}
	return block, nil
}

// batchTimestamp returns the latest client timestamp in the batch — a
// value every committer derives identically from the ordered payload.
func batchTimestamp(txs []ledger.Transaction) time.Time {
	var ts time.Time
	for i := range txs {
		if txs[i].Timestamp.After(ts) {
			ts = txs[i].Timestamp
		}
	}
	return ts
}

// validateBlock runs the validation half of the validate-then-commit
// split over one block's transactions, WITHOUT touching state:
//
//  1. Stateless checks (signatures, policy) fan out over a worker pool.
//  2. MVCC runs serially in block order against committed state plus the
//     in-block write set. Nothing mutates until every transaction is
//     flagged, so each check observes pre-block versions — identical to
//     a serial validate-and-apply interleaving, because a read of any
//     key an earlier in-block transaction wrote is already a conflict.
//     After each transaction is flagged, check (when non-nil) may abort
//     the whole block before any state changes — the sync and recovery
//     paths' flag-mismatch rejection.
//
// It returns the per-transaction flags plus the surviving write sets
// (updates, and the indices of the transactions that produced them) for
// commitValidated to land.
func (p *Peer) validateBlock(number uint64, txs []ledger.Transaction, check func(i int, flag ledger.ValidationCode) error) ([]ledger.ValidationCode, []statedb.TxUpdate, []int, error) {
	pre := p.validateStatelessAll(txs)
	flags := make([]ledger.ValidationCode, len(txs))
	blockWrites := make(map[string]bool) // ns\x00key written by earlier valid tx
	updates := make([]statedb.TxUpdate, 0, len(txs))
	validIdx := make([]int, 0, len(txs))
	for i := range txs {
		tx := &txs[i]
		flag := pre[i]
		if flag == ledger.Valid {
			flag = p.validateMVCC(tx, blockWrites)
		}
		if check != nil {
			if err := check(i, flag); err != nil {
				return nil, nil, nil, err
			}
		}
		flags[i] = flag
		if flag != ledger.Valid {
			continue
		}
		batch := statedb.NewUpdateBatch()
		batch.AddRWSetWrites(tx.RWSet)
		updates = append(updates, statedb.TxUpdate{
			Batch:   batch,
			Version: statedb.Version{BlockNum: number, TxNum: uint64(i)},
		})
		validIdx = append(validIdx, i)
		for _, w := range tx.RWSet.Writes {
			blockWrites[w.Namespace+"\x00"+w.Key] = true
		}
	}
	return flags, updates, validIdx, nil
}

// commitValidated lands a fully-validated block, in recovery-safe order:
//
//  1. Structural chain check (ledger.VerifyNext) — a malformed block must
//     never reach the durable log.
//  2. Block log append (durable peers, relog=true). From this point the
//     block is committed: if the process dies before the remaining steps,
//     recovery replays it from the log.
//  3. History entries. Keyed by commit version, so a replay after a crash
//     between 3 and 4 overwrites instead of duplicating.
//  4. One state-engine pass (statedb.ApplyBlockAt) carrying every
//     surviving write set AND the savepoint marker — atomic on the
//     persist engine, which is what makes recovery's "replay strictly
//     after the savepoint" exact.
//  5. In-memory chain append + waiter/subscriber notification. The
//     in-memory height only advances after state is applied, so observers
//     that wait on height never read pre-block state.
//
// relog=false replays a block that is already in the log (recovery).
// Caller holds commitMu.
func (p *Peer) commitValidated(block *ledger.Block, updates []statedb.TxUpdate, validIdx []int, relog bool) error {
	number := block.Header.Number
	if err := p.ledger.VerifyNext(block); err != nil {
		return fmt.Errorf("peer %s: commit block %d: %w", p.id, number, err)
	}
	if p.blockLog != nil && relog {
		if err := p.blockLog.Append(block); err != nil {
			return fmt.Errorf("peer %s: log block %d: %w", p.id, number, err)
		}
	}
	for ui, i := range validIdx {
		p.history.RecordBatch(updates[ui].Batch, block.Txs[i].ID, updates[ui].Version, block.Txs[i].Timestamp)
	}
	p.state.ApplyBlockAt(updates, number)
	if err := p.ledger.Append(block); err != nil {
		return fmt.Errorf("peer %s: append block %d: %w", p.id, number, err)
	}
	p.notify(block)
	return nil
}

// replayLoggedBlock re-commits one block read back from the block log,
// re-validating everything and requiring the recorded flags to match —
// recovery must never trust what validation can recompute.
func (p *Peer) replayLoggedBlock(b *ledger.Block) error {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	number := p.ledger.Height()
	if b.Header.Number != number {
		return fmt.Errorf("replay gap: got block %d at height %d", b.Header.Number, number)
	}
	if len(b.Metadata.Flags) != len(b.Txs) {
		// The flag-check callback below indexes Flags[i]; a short list in
		// a decodable-but-malformed record must be an error, not a panic.
		return fmt.Errorf("replay block %d has %d flags for %d txs", b.Header.Number, len(b.Metadata.Flags), len(b.Txs))
	}
	_, updates, validIdx, err := p.validateBlock(number, b.Txs, func(i int, flag ledger.ValidationCode) error {
		if flag != b.Metadata.Flags[i] {
			return fmt.Errorf("%w: block %d tx %d: local %s vs recorded %s",
				ErrFlagMismatch, b.Header.Number, i, flag, b.Metadata.Flags[i])
		}
		return nil
	})
	if err != nil {
		return err
	}
	return p.commitValidated(b, updates, validIdx, false)
}

// validateStatelessAll runs the per-transaction signature/policy checks,
// fanning out over a bounded worker pool when the block carries more than
// one transaction.
func (p *Peer) validateStatelessAll(txs []ledger.Transaction) []ledger.ValidationCode {
	if len(txs) > 1 {
		p.warmVerifyCache(txs)
	}
	flags := make([]ledger.ValidationCode, len(txs))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(txs) {
		workers = len(txs)
	}
	if workers <= 1 {
		for i := range txs {
			flags[i] = p.validateStateless(&txs[i])
		}
		return flags
	}
	var wg sync.WaitGroup
	next := make(chan int, len(txs))
	for i := range txs {
		next <- i
	}
	close(next)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				flags[i] = p.validateStateless(&txs[i])
			}
		}()
	}
	wg.Wait()
	return flags
}

// warmVerifyCache batch-verifies every signature a block carries — each
// transaction's creator envelope and all its endorsements — in one
// cache-aware parallel pass, so the per-transaction checks that follow are
// pure cache hits. This amortises ed25519 cost over the whole block and
// deduplicates repeated tuples across transactions.
func (p *Peer) warmVerifyCache(txs []ledger.Transaction) {
	items := make([]msp.VerifyItem, 0, len(txs)*4)
	for i := range txs {
		tx := &txs[i]
		// Pin the digest before the worker fan-out: every later Digest/
		// SigningBytes call on this envelope reads the memo instead of
		// re-serialising the read/write set.
		tx.PrecomputeDigest()
		items = append(items, msp.VerifyItem{Identity: tx.Creator, Message: tx.SigningBytes(), Signature: tx.Signature})
		for _, e := range tx.Endorsements {
			items = append(items, msp.VerifyItem{Identity: e.Endorser, Message: e.Digest, Signature: e.Signature})
		}
	}
	p.verifyCache.VerifyBatchEach(items)
}

// validateStateless applies the commit-time checks that need no world
// state, in Fabric's order.
func (p *Peer) validateStateless(tx *ledger.Transaction) ledger.ValidationCode {
	// Single-tx blocks skip the warm pass; pin the digest here (this
	// goroutine owns the transaction's slice slot during fan-out).
	tx.PrecomputeDigest()
	// 1. Client envelope signature, through the verify cache: the sync and
	// recovery paths re-validate envelopes already checked at live commit.
	if !p.verifyCache.Verify(tx.Creator, tx.SigningBytes(), tx.Signature) {
		return ledger.BadCreatorSignature
	}
	// 2. Endorsement policy over the simulation digest. Each endorsement
	// signature is checked exactly once, through the cache-aware batch
	// verifier; the verdicts feed both the watchdog scan (endorsers who
	// signed a different digest endorsed a result that does not match the
	// agreed outcome) and the policy evaluation — previously the policy
	// re-verified every endorsement the watchdog scan had just verified.
	digest := tx.Digest()
	items := make([]msp.VerifyItem, len(tx.Endorsements))
	for i, e := range tx.Endorsements {
		items[i] = msp.VerifyItem{Identity: e.Endorser, Message: e.Digest, Signature: e.Signature}
	}
	verdicts := p.verifyCache.VerifyBatchEach(items)
	for i, e := range tx.Endorsements {
		if verdicts[i] && !bytesEqual(e.Digest, digest) {
			p.watchdog.Report(e.Endorser.ID(), "endorsed mismatching digest")
		}
	}
	if err := msp.EvaluateVerified(p.policy, digest, tx.Endorsements, verdicts); err != nil {
		return ledger.EndorsementPolicyFailure
	}
	return ledger.Valid
}

// validateMVCC checks that every read version is still current and that no
// earlier transaction in this block wrote a key this one read.
func (p *Peer) validateMVCC(tx *ledger.Transaction, blockWrites map[string]bool) ledger.ValidationCode {
	for _, r := range tx.RWSet.Reads {
		if blockWrites[r.Namespace+"\x00"+r.Key] {
			return ledger.MVCCConflict
		}
		cur, ok := p.state.GetVersion(r.Namespace, r.Key)
		if ok != r.Exists {
			return ledger.MVCCConflict
		}
		if ok && cur.Compare(r.Version) != 0 {
			return ledger.MVCCConflict
		}
	}
	return ledger.Valid
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// notify wakes commit waiters and event subscribers for a committed block.
func (p *Peer) notify(block *ledger.Block) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range block.Txs {
		tx := &block.Txs[i]
		flag := block.Metadata.Flags[i]
		for _, ch := range p.commitWait[tx.ID] {
			select {
			case ch <- flag:
			default:
			}
		}
		delete(p.commitWait, tx.ID)
		if flag != ledger.Valid {
			continue
		}
		for _, e := range tx.Events {
			for _, sub := range p.subscribers {
				select {
				case sub <- chaincode.Event{TxID: tx.ID, Name: e.Name, Payload: e.Payload}:
				default:
				}
			}
		}
	}
}
