package peer

import (
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"socialchain/internal/chaincode"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/statedb"
	"socialchain/internal/storage"
)

// Peer is one endorsing/committing node. Every peer holds a full copy of
// the ledger and world state and independently validates every block, as in
// the paper's Figure 1 where all endorsement peers act as validators.
type Peer struct {
	id        string
	channelID string
	signer    *msp.Signer

	ledger   *ledger.Ledger
	state    *statedb.DB
	history  *statedb.HistoryDB
	registry *chaincode.Registry
	policy   msp.Policy
	watchdog *Watchdog

	mu          sync.Mutex
	commitWait  map[string][]chan ledger.ValidationCode
	subscribers []chan chaincode.Event
}

// Config assembles a peer.
type Config struct {
	ID        string
	ChannelID string
	Signer    *msp.Signer
	// Registry is the deployed chaincode set (shared across peers —
	// chaincode instances are stateless; all state flows through the stub).
	Registry *chaincode.Registry
	// Policy validates endorsements at commit; nil panics (the network
	// assembly always supplies one).
	Policy msp.Policy
	// Watchdog records endorsement misbehaviour (may be shared; nil creates
	// a private one).
	Watchdog *Watchdog
	// State selects the key-value engine backing this peer's world state
	// and history database (zero value = the sharded default).
	State storage.Config
	// Indexes declares the secondary indexes the world state maintains
	// (nil = none). Index reads feed endorsement results, so every peer
	// of a channel must run the same list.
	Indexes []statedb.IndexSpec
}

// New creates a peer with an empty ledger anchored by a genesis block.
func New(cfg Config) (*Peer, error) {
	if cfg.Policy == nil {
		return nil, fmt.Errorf("peer %s: nil endorsement policy", cfg.ID)
	}
	wd := cfg.Watchdog
	if wd == nil {
		wd = NewWatchdog(3)
	}
	state, err := statedb.NewIndexedWith(cfg.State, cfg.Indexes...)
	if err != nil {
		return nil, fmt.Errorf("peer %s: %w", cfg.ID, err)
	}
	p := &Peer{
		id:         cfg.ID,
		channelID:  cfg.ChannelID,
		signer:     cfg.Signer,
		ledger:     ledger.New(),
		state:      state,
		history:    statedb.NewHistoryDBWith(cfg.State),
		registry:   cfg.Registry,
		policy:     cfg.Policy,
		watchdog:   wd,
		commitWait: make(map[string][]chan ledger.ValidationCode),
	}
	// The genesis block is identical on every peer: fixed zero timestamp
	// (the header hash covers only number, prev-hash and data hash, so the
	// chain stays consistent regardless).
	genesis := ledger.NewBlock(0, [32]byte{}, nil, time.Time{})
	if err := p.ledger.Append(genesis); err != nil {
		return nil, fmt.Errorf("peer %s: genesis: %w", cfg.ID, err)
	}
	return p, nil
}

// ID returns the peer's name.
func (p *Peer) ID() string { return p.id }

// Identity returns the peer's signing identity.
func (p *Peer) Identity() msp.Identity { return p.signer.Identity }

// Ledger exposes the peer's chain.
func (p *Peer) Ledger() *ledger.Ledger { return p.ledger }

// State exposes the peer's world state.
func (p *Peer) State() *statedb.DB { return p.state }

// History exposes the peer's history database.
func (p *Peer) History() *statedb.HistoryDB { return p.history }

// Watchdog exposes the misbehaviour tracker.
func (p *Peer) Watchdog() *Watchdog { return p.watchdog }

// Endorse simulates a proposal against this peer's current state and signs
// the resulting read/write set, implementing the paper's "each peer
// executes the smart contract independently".
func (p *Peer) Endorse(prop *Proposal) (*ProposalResponse, error) {
	if !prop.Verify() {
		return nil, fmt.Errorf("peer %s: proposal %s: bad client signature", p.id, prop.TxID)
	}
	cc, ok := p.registry.Get(prop.Chaincode)
	if !ok {
		return nil, fmt.Errorf("peer %s: unknown chaincode %q", p.id, prop.Chaincode)
	}
	sim := chaincode.NewSimulator(chaincode.TxContext{
		TxID:      prop.TxID,
		ChannelID: prop.ChannelID,
		Creator:   prop.Creator,
		Timestamp: prop.Timestamp,
	}, prop.Chaincode, p.state, p.history).WithRegistry(p.registry)
	resp, err := cc.Invoke(sim, prop.Fn, prop.Args)
	if err != nil {
		return nil, fmt.Errorf("peer %s: chaincode %s.%s: %w", p.id, prop.Chaincode, prop.Fn, err)
	}
	rw := sim.RWSet()
	rwJSON, err := json.Marshal(rw)
	if err != nil {
		return nil, fmt.Errorf("peer %s: marshal rwset: %w", p.id, err)
	}
	digest := rw.Digest(resp)
	var events []ledger.Event
	for _, e := range sim.Events() {
		events = append(events, ledger.Event{Name: e.Name, Payload: e.Payload})
	}
	return &ProposalResponse{
		TxID:      prop.TxID,
		Response:  resp,
		RWSetJSON: rwJSON,
		Events:    events,
		Endorsement: msp.Endorsement{
			Endorser:  p.signer.Identity,
			Digest:    digest,
			Signature: p.signer.Sign(digest),
		},
	}, nil
}

// WaitForCommit returns a channel that receives the validation flag when
// txID commits on this peer. The channel is buffered; the caller need not
// drain it before the commit happens.
func (p *Peer) WaitForCommit(txID string) <-chan ledger.ValidationCode {
	ch := make(chan ledger.ValidationCode, 1)
	p.mu.Lock()
	p.commitWait[txID] = append(p.commitWait[txID], ch)
	p.mu.Unlock()
	return ch
}

// SubscribeEvents returns a channel receiving chaincode events of valid
// committed transactions.
func (p *Peer) SubscribeEvents(buffer int) <-chan chaincode.Event {
	if buffer <= 0 {
		buffer = 256
	}
	ch := make(chan chaincode.Event, buffer)
	p.mu.Lock()
	p.subscribers = append(p.subscribers, ch)
	p.mu.Unlock()
	return ch
}

// CommitBatch validates and commits one ordered batch of transactions as
// the next block: endorsement policy first (the ≥2/3 rule), then MVCC
// read-version checks, applying only valid writes. It returns the block.
func (p *Peer) CommitBatch(txs []ledger.Transaction) (*ledger.Block, error) {
	number := p.ledger.Height()
	block := ledger.NewBlock(number, p.ledger.TipHash(), txs, time.Now())

	blockWrites := make(map[string]bool) // ns\x00key written by earlier valid tx
	for i := range block.Txs {
		tx := &block.Txs[i]
		flag := p.validateTx(tx, blockWrites)
		block.Metadata.Flags[i] = flag
		if flag != ledger.Valid {
			continue
		}
		batch := statedb.NewUpdateBatch()
		batch.AddRWSetWrites(tx.RWSet)
		v := statedb.Version{BlockNum: number, TxNum: uint64(i)}
		p.state.ApplyUpdates(batch, v)
		p.history.RecordBatch(batch, tx.ID, v, tx.Timestamp)
		for _, w := range tx.RWSet.Writes {
			blockWrites[w.Namespace+"\x00"+w.Key] = true
		}
	}
	if err := p.ledger.Append(block); err != nil {
		return nil, fmt.Errorf("peer %s: append block %d: %w", p.id, number, err)
	}
	p.notify(block)
	return block, nil
}

// validateTx applies the commit-time checks in Fabric's order.
func (p *Peer) validateTx(tx *ledger.Transaction, blockWrites map[string]bool) ledger.ValidationCode {
	// 1. Client envelope signature.
	if !tx.Creator.Verify(tx.SigningBytes(), tx.Signature) {
		return ledger.BadCreatorSignature
	}
	// 2. Endorsement policy over the simulation digest; also feed the
	// watchdog with endorsers who signed a different digest (they endorsed
	// a result that does not match the agreed outcome).
	digest := tx.Digest()
	for _, e := range tx.Endorsements {
		if e.Verify() && !bytesEqual(e.Digest, digest) {
			p.watchdog.Report(e.Endorser.ID(), "endorsed mismatching digest")
		}
	}
	if err := p.policy.Evaluate(digest, tx.Endorsements); err != nil {
		return ledger.EndorsementPolicyFailure
	}
	// 3. MVCC: every read version must still be current, and no earlier
	// transaction in this block may have written a key this one read.
	for _, r := range tx.RWSet.Reads {
		if blockWrites[r.Namespace+"\x00"+r.Key] {
			return ledger.MVCCConflict
		}
		cur, ok := p.state.GetVersion(r.Namespace, r.Key)
		if ok != r.Exists {
			return ledger.MVCCConflict
		}
		if ok && cur.Compare(r.Version) != 0 {
			return ledger.MVCCConflict
		}
	}
	return ledger.Valid
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// notify wakes commit waiters and event subscribers for a committed block.
func (p *Peer) notify(block *ledger.Block) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for i := range block.Txs {
		tx := &block.Txs[i]
		flag := block.Metadata.Flags[i]
		for _, ch := range p.commitWait[tx.ID] {
			select {
			case ch <- flag:
			default:
			}
		}
		delete(p.commitWait, tx.ID)
		if flag != ledger.Valid {
			continue
		}
		for _, e := range tx.Events {
			for _, sub := range p.subscribers {
				select {
				case sub <- chaincode.Event{TxID: tx.ID, Name: e.Name, Payload: e.Payload}:
				default:
				}
			}
		}
	}
}
