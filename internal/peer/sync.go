package peer

import (
	"fmt"

	"socialchain/internal/ledger"
)

// The consensus layer delivers decided batches live; a peer that was
// partitioned or restarted misses some and cannot execute past the gap.
// SyncFrom implements the catch-up path (Fabric's block deliver/state
// transfer): it copies the missing blocks from a healthy peer,
// re-validating everything — hash-chain linkage via ledger.Append and each
// transaction's flags via the same commit-time rules — so a malicious
// "helper" cannot inject invalid state.

// ErrFlagMismatch is returned when a synced block's recorded validation
// flags disagree with this peer's own re-validation.
var ErrFlagMismatch = fmt.Errorf("peer: synced block flags disagree with local validation")

// BlockSource is where SyncFrom pulls missing blocks from: another
// in-process *Peer, or a remote peer reached over the transport RPC layer
// (fabric's anti-entropy catch-up). Every block it returns is re-validated
// locally, so an untrusted source cannot inject invalid state.
type BlockSource interface {
	// Height returns the source chain height.
	Height() uint64
	// BlocksFrom returns all blocks with number >= from.
	BlocksFrom(from uint64) ([]*ledger.Block, error)
}

// Height returns the peer's chain height (BlockSource).
func (p *Peer) Height() uint64 { return p.ledger.Height() }

// BlocksFrom returns the peer's blocks with number >= from (BlockSource).
func (p *Peer) BlocksFrom(from uint64) ([]*ledger.Block, error) {
	return p.ledger.BlocksFrom(from), nil
}

// SyncFrom copies blocks [local height, source height) from the source,
// returning how many blocks were applied.
func (p *Peer) SyncFrom(src BlockSource) (int, error) {
	from := p.ledger.Height()
	blocks, err := src.BlocksFrom(from)
	if err != nil {
		return 0, fmt.Errorf("peer %s: sync fetch from height %d: %w", p.id, from, err)
	}
	applied := 0
	for _, b := range blocks {
		if err := p.applySyncedBlock(b); err != nil {
			return applied, err
		}
		applied++
	}
	return applied, nil
}

// applySyncedBlock re-validates a remote block and commits it locally —
// including, on a durable peer, appending it to the block log, so a
// restart after catch-up does not lose the synced tail.
func (p *Peer) applySyncedBlock(b *ledger.Block) error {
	p.commitMu.Lock()
	defer p.commitMu.Unlock()
	number := p.ledger.Height()
	if b.Header.Number != number {
		return fmt.Errorf("peer %s: sync gap: got block %d at height %d", p.id, b.Header.Number, number)
	}
	if len(b.Metadata.Flags) != len(b.Txs) {
		// The flag-check callback indexes Flags[i]; a malicious or
		// malformed source block must error cleanly, not panic the peer.
		return fmt.Errorf("peer %s: synced block %d has %d flags for %d txs", p.id, b.Header.Number, len(b.Metadata.Flags), len(b.Txs))
	}
	// Re-validate every transaction against local state with the same
	// rules (and the same parallel-stateless/serial-MVCC split) the
	// original commit used; a flag disagreement aborts before any local
	// state changes.
	_, updates, validIdx, err := p.validateBlock(number, b.Txs, func(i int, flag ledger.ValidationCode) error {
		if flag != b.Metadata.Flags[i] {
			return fmt.Errorf("%w: block %d tx %d: local %s vs recorded %s",
				ErrFlagMismatch, b.Header.Number, i, flag, b.Metadata.Flags[i])
		}
		return nil
	})
	if err != nil {
		return err
	}
	if err := p.commitValidated(b, updates, validIdx, true); err != nil {
		return fmt.Errorf("peer %s: sync: %w", p.id, err)
	}
	return nil
}
