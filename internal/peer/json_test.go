package peer

import "encoding/json"

// jsonUnmarshal keeps the test file imports tidy.
func jsonUnmarshal(b []byte, v any) error { return json.Unmarshal(b, v) }
