package peer

import (
	"errors"
	"testing"

	"socialchain/internal/chaincode"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
)

// twinPeers builds two peers with identical config sharing nothing.
func twinPeers(t *testing.T) (*Peer, *Peer, *msp.Signer) {
	t.Helper()
	reg := chaincode.NewRegistry()
	if err := reg.Register(counterCC{}); err != nil {
		t.Fatal(err)
	}
	mk := func(id string) *Peer {
		signer, err := msp.NewSigner("org", id, msp.RoleMember)
		if err != nil {
			t.Fatal(err)
		}
		p, err := New(Config{ID: id, ChannelID: "ch", Signer: signer, Registry: reg, Policy: msp.AnyValid{}})
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	client, err := msp.NewSigner("c", "client", msp.RoleMember)
	if err != nil {
		t.Fatal(err)
	}
	return mk("peerA"), mk("peerB"), client
}

// commitOn runs one endorsed counter increment on the peer.
func commitOn(t *testing.T, p *Peer, client *msp.Signer, key string) {
	t.Helper()
	prop := propose(t, client, "incr", []byte(key))
	resp, err := p.Endorse(prop)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.CommitBatch([]ledger.Transaction{envelope(t, client, prop, resp)}); err != nil {
		t.Fatal(err)
	}
}

func TestSyncFromCatchesUp(t *testing.T) {
	a, b, client := twinPeers(t)
	for i := 0; i < 5; i++ {
		commitOn(t, a, client, "ctr")
	}
	if a.Ledger().Height() != 6 { // genesis + 5
		t.Fatalf("source height %d", a.Ledger().Height())
	}
	n, err := b.SyncFrom(a)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Fatalf("synced %d blocks", n)
	}
	if b.Ledger().Height() != a.Ledger().Height() || b.Ledger().TipHash() != a.Ledger().TipHash() {
		t.Fatal("peers diverge after sync")
	}
	// World state caught up too.
	vv, ok := b.State().GetState("counter", "ctr")
	if !ok || string(vv.Value) != "5" {
		t.Fatalf("synced state = %v %q", ok, vv.Value)
	}
	// History replicated.
	if got := len(b.History().Get("counter", "ctr")); got != 5 {
		t.Fatalf("synced history entries = %d", got)
	}
}

func TestSyncFromIsIncremental(t *testing.T) {
	a, b, client := twinPeers(t)
	commitOn(t, a, client, "x")
	if _, err := b.SyncFrom(a); err != nil {
		t.Fatal(err)
	}
	commitOn(t, a, client, "x")
	n, err := b.SyncFrom(a)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("incremental sync applied %d blocks", n)
	}
}

func TestSyncFromNothingToDo(t *testing.T) {
	a, b, _ := twinPeers(t)
	n, err := b.SyncFrom(a)
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestSyncRejectsForgedFlags(t *testing.T) {
	a, b, client := twinPeers(t)
	// Commit an under-endorsed transaction on a peer whose policy demands
	// nothing (AnyValid passes); then forge the recorded flag so the
	// syncing peer's re-validation disagrees.
	commitOn(t, a, client, "y")
	blk, err := a.Ledger().GetBlock(1)
	if err != nil {
		t.Fatal(err)
	}
	blk.Metadata.Flags[0] = ledger.MVCCConflict // lie about the outcome
	_, serr := b.SyncFrom(a)
	if !errors.Is(serr, ErrFlagMismatch) {
		t.Fatalf("want ErrFlagMismatch, got %v", serr)
	}
	// Restore so other assertions on a remain valid.
	blk.Metadata.Flags[0] = ledger.Valid
}

func TestSyncedPeerCanContinueCommitting(t *testing.T) {
	a, b, client := twinPeers(t)
	for i := 0; i < 3; i++ {
		commitOn(t, a, client, "z")
	}
	if _, err := b.SyncFrom(a); err != nil {
		t.Fatal(err)
	}
	// The synced peer endorses and commits the next transaction itself.
	commitOn(t, b, client, "z")
	vv, _ := b.State().GetState("counter", "z")
	if string(vv.Value) != "4" {
		t.Fatalf("counter after continued commits = %q", vv.Value)
	}
	if err := b.Ledger().VerifyChain(); err != nil {
		t.Fatal(err)
	}
}
