package bitswap

import (
	"bytes"
	"testing"

	"socialchain/internal/blockstore"
	"socialchain/internal/transport"
)

// TestFetchOverTransport exchanges blocks between engines bound to
// separate transport endpoints — the exact path out-of-process IPFS nodes
// use, here over in-process endpoints for determinism.
func TestFetchOverTransport(t *testing.T) {
	hub := transport.NewInProcNet(nil, nil)
	mk := func(id string) (*Engine, blockstore.Blockstore) {
		tr := hub.Node(id)
		bs := blockstore.NewMem()
		return NewEngineOverTransport(tr, transport.NewRPC(tr), bs), bs
	}
	a, abs := mk("ipfs-a")
	b, _ := mk("ipfs-b")

	blk := blockstore.NewBlock([]byte("wire payload"))
	if err := abs.Put(blk); err != nil {
		t.Fatal(err)
	}
	got, err := b.FetchBlock(blk.Cid, []string{"ipfs-a"})
	if err != nil {
		t.Fatalf("fetch over transport: %v", err)
	}
	if !bytes.Equal(got.Data, blk.Data) {
		t.Fatalf("fetched %q, want %q", got.Data, blk.Data)
	}
	if a.Stats().BlocksSent.Load() != 1 || b.Stats().BlocksReceived.Load() != 1 {
		t.Fatalf("stats not recorded: sent=%d recv=%d",
			a.Stats().BlocksSent.Load(), b.Stats().BlocksReceived.Load())
	}

	// A provider that does not hold the block is skipped, not fatal.
	missing := blockstore.NewBlock([]byte("absent"))
	if _, err := b.FetchBlock(missing.Cid, []string{"ipfs-a"}); err == nil {
		t.Fatal("expected unavailable error for absent block")
	}
}
