package bitswap

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"socialchain/internal/blockstore"
	"socialchain/internal/cid"
	"socialchain/internal/sim"
)

func twoEngines(t *testing.T) (*Engine, *Engine) {
	t.Helper()
	net := NewNetwork(nil, nil)
	a := net.NewEngine("a", blockstore.NewMem())
	b := net.NewEngine("b", blockstore.NewMem())
	return a, b
}

func TestFetchBlockFromPeer(t *testing.T) {
	a, b := twoEngines(t)
	blk := blockstore.NewBlock([]byte("shared-block"))
	if err := b.bs.Put(blk); err != nil {
		t.Fatal(err)
	}
	got, err := a.FetchBlock(blk.Cid, []string{"b"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, blk.Data) {
		t.Fatal("fetched data mismatch")
	}
	// The block is now cached locally.
	if !a.bs.Has(blk.Cid) {
		t.Fatal("fetched block not stored locally")
	}
	// Stats moved.
	if a.Stats().BlocksReceived.Load() != 1 || b.Stats().BlocksSent.Load() != 1 {
		t.Fatal("stats not recorded")
	}
}

func TestFetchBlockLocalShortCircuit(t *testing.T) {
	a, b := twoEngines(t)
	blk := blockstore.NewBlock([]byte("local"))
	if err := a.bs.Put(blk); err != nil {
		t.Fatal(err)
	}
	if _, err := a.FetchBlock(blk.Cid, nil); err != nil {
		t.Fatal(err)
	}
	if b.Stats().BlocksSent.Load() != 0 {
		t.Fatal("local fetch hit the network")
	}
}

func TestFetchBlockUnavailable(t *testing.T) {
	a, _ := twoEngines(t)
	_, err := a.FetchBlock(cid.SumRaw([]byte("missing")), []string{"b"})
	if !errors.Is(err, ErrBlockUnavailable) {
		t.Fatalf("want ErrBlockUnavailable, got %v", err)
	}
}

func TestFetchBlockSkipsDeadProviders(t *testing.T) {
	a, b := twoEngines(t)
	blk := blockstore.NewBlock([]byte("resilient"))
	if err := b.bs.Put(blk); err != nil {
		t.Fatal(err)
	}
	// "ghost" is not registered; "a" is self and skipped; "b" has it.
	got, err := a.FetchBlock(blk.Cid, []string{"ghost", "a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, blk.Data) {
		t.Fatal("data mismatch")
	}
}

func TestFetchManyParallel(t *testing.T) {
	net := NewNetwork(nil, nil)
	src := net.NewEngine("src", blockstore.NewMem())
	dst := net.NewEngine("dst", blockstore.NewMem())
	rng := sim.NewRNG(2)
	var cids []cid.Cid
	for i := 0; i < 50; i++ {
		blk := blockstore.NewBlock(rng.Bytes(512))
		if err := src.bs.Put(blk); err != nil {
			t.Fatal(err)
		}
		cids = append(cids, blk.Cid)
	}
	if err := dst.FetchMany(cids, []string{"src"}); err != nil {
		t.Fatal(err)
	}
	for _, c := range cids {
		if !dst.bs.Has(c) {
			t.Fatalf("missing %s after FetchMany", c)
		}
	}
	if got := dst.Stats().BlocksReceived.Load(); got != 50 {
		t.Fatalf("received %d blocks", got)
	}
}

func TestFetchManyPartialFailure(t *testing.T) {
	net := NewNetwork(nil, nil)
	src := net.NewEngine("src", blockstore.NewMem())
	dst := net.NewEngine("dst", blockstore.NewMem())
	have := blockstore.NewBlock([]byte("present"))
	if err := src.bs.Put(have); err != nil {
		t.Fatal(err)
	}
	missing := cid.SumRaw([]byte("absent"))
	err := dst.FetchMany([]cid.Cid{have.Cid, missing}, []string{"src"})
	if err == nil {
		t.Fatal("FetchMany must fail when a block is unavailable")
	}
}

func TestFetchManyEmpty(t *testing.T) {
	a, _ := twoEngines(t)
	if err := a.FetchMany(nil, nil); err != nil {
		t.Fatal(err)
	}
}

func TestWantlistLifecycle(t *testing.T) {
	a, _ := twoEngines(t)
	c := cid.SumRaw([]byte("wanted"))
	a.want(c)
	wl := a.Wantlist()
	if len(wl) != 1 || !wl[0].Equals(c) {
		t.Fatalf("wantlist = %v", wl)
	}
	a.unwant(c)
	if len(a.Wantlist()) != 0 {
		t.Fatal("unwant did not clear")
	}
}

func TestCorruptProviderCannotPoison(t *testing.T) {
	// A provider returning bytes that do not match the CID must be ignored.
	net := NewNetwork(nil, nil)
	evil := net.NewEngine("evil", &lyingStore{})
	_ = evil
	honest := net.NewEngine("honest", blockstore.NewMem())
	want := cid.SumRaw([]byte("the-truth"))
	_, err := honest.FetchBlock(want, []string{"evil"})
	if !errors.Is(err, ErrBlockUnavailable) {
		t.Fatalf("poisoned block accepted: %v", err)
	}
	if honest.bs.Has(want) {
		t.Fatal("corrupt block stored")
	}
}

// lyingStore claims to hold every block but returns wrong bytes.
type lyingStore struct{}

func (*lyingStore) Put(b blockstore.Block) error { return nil }
func (*lyingStore) Get(c cid.Cid) (blockstore.Block, error) {
	return blockstore.Block{Cid: c, Data: []byte("lies")}, nil
}
func (*lyingStore) Has(cid.Cid) bool     { return true }
func (*lyingStore) Delete(cid.Cid) error { return nil }
func (*lyingStore) AllKeys() []cid.Cid   { return nil }
func (*lyingStore) Len() int             { return 0 }
func (*lyingStore) SizeBytes() uint64    { return 0 }
func (*lyingStore) Sync() error          { return nil }
func (*lyingStore) Close() error         { return nil }

var _ blockstore.Blockstore = (*lyingStore)(nil)

func TestManyEnginesChain(t *testing.T) {
	// dst fetches from mid, which already fetched from src: content flows
	// through the swarm.
	net := NewNetwork(nil, nil)
	src := net.NewEngine("src", blockstore.NewMem())
	mid := net.NewEngine("mid", blockstore.NewMem())
	dst := net.NewEngine("dst", blockstore.NewMem())
	blk := blockstore.NewBlock([]byte("chained"))
	if err := src.bs.Put(blk); err != nil {
		t.Fatal(err)
	}
	if _, err := mid.FetchBlock(blk.Cid, []string{"src"}); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.FetchBlock(blk.Cid, []string{"mid"}); err != nil {
		t.Fatal(err)
	}
	if !dst.bs.Has(blk.Cid) {
		t.Fatal("content did not propagate")
	}
}

func TestUnknownPeerError(t *testing.T) {
	net := NewNetwork(nil, nil)
	_, err := net.lookup("nobody")
	if err == nil {
		t.Fatal("unknown peer lookup succeeded")
	}
	if msg := fmt.Sprint(err); msg == "" {
		t.Fatal("empty error message")
	}
}
