package bitswap

import (
	"encoding/json"
	"fmt"
	"time"

	"socialchain/internal/blockstore"
	"socialchain/internal/cid"
	"socialchain/internal/transport"
)

// methodWant is the RPC method a transport-backed engine serves: one want
// request answered with the block bytes, or an error when absent.
const methodWant = "bs/want"

// DefaultWantTimeout bounds one want round trip over a real transport.
const DefaultWantTimeout = 10 * time.Second

type wantReq struct {
	Cid cid.Cid `json:"cid"`
}

type wantResp struct {
	Data []byte `json:"data"`
}

// transportWire implements Wire over a transport endpoint: want requests
// become framed RPCs, and the engine registered on the endpoint serves its
// peers' wants. The latency is whatever the transport's medium imposes —
// real for TCP, zero for in-process endpoints.
type transportWire struct {
	rpc     *transport.RPC
	timeout time.Duration
}

// NewEngineOverTransport binds a peer's engine to a transport endpoint:
// fetches ride the endpoint's framed RPCs and the engine answers remote
// wants from its own blockstore. The engine's peer name is the endpoint's
// transport ID, so DHT provider records naming transport IDs resolve
// directly to dialable peers.
func NewEngineOverTransport(t transport.Transport, rpc *transport.RPC, bs blockstore.Blockstore) *Engine {
	e := &Engine{
		name:     t.ID(),
		bs:       bs,
		wire:     &transportWire{rpc: rpc, timeout: DefaultWantTimeout},
		wantlist: make(map[cid.Cid]bool),
	}
	rpc.Handle(methodWant, func(from string, req []byte) ([]byte, error) {
		var r wantReq
		if err := json.Unmarshal(req, &r); err != nil {
			return nil, err
		}
		b, ok := e.handleWant(r.Cid)
		if !ok {
			return nil, fmt.Errorf("bitswap: %s does not hold %s", e.name, r.Cid)
		}
		return json.Marshal(wantResp{Data: b.Data})
	})
	return e
}

func (w *transportWire) Want(from, to string, c cid.Cid) (blockstore.Block, error) {
	var resp wantResp
	if err := w.rpc.CallJSON(to, methodWant, wantReq{Cid: c}, &resp, w.timeout); err != nil {
		return blockstore.Block{}, err
	}
	// Rehash rather than trust the sender's CID; Put on the caller side
	// verifies again, but a mismatched block should fail here with a clear
	// provenance.
	b := blockstore.NewBlock(resp.Data)
	if b.Cid != c {
		return blockstore.Block{}, fmt.Errorf("bitswap: peer %s served wrong content for %s", to, c)
	}
	return b, nil
}
