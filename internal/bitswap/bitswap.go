// Package bitswap implements the block-exchange protocol of the off-chain
// store: peers request wanted blocks from providers discovered via the DHT
// and serve blocks from their local stores, with per-peer transfer
// statistics. It is a faithful, simplified analogue of IPFS bitswap:
// wantlists, provider sessions and parallel fetches.
package bitswap

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"socialchain/internal/blockstore"
	"socialchain/internal/cid"
	"socialchain/internal/sim"
)

// ErrBlockUnavailable is returned when no provider can serve a wanted block.
var ErrBlockUnavailable = errors.New("bitswap: block unavailable from all providers")

// Wire is the seam the block-exchange protocol speaks through: one
// synchronous want request to a named peer. Network implements it with
// latency-delayed in-process calls (the deterministic default);
// internal/bitswap's transport backend (wire.go) implements it over
// framed socket RPCs, so the same engine code runs in-process and across
// OS processes.
type Wire interface {
	// Want asks peer `to` for block c on behalf of `from`. An error means
	// the peer is unreachable or does not hold the block; the fetcher then
	// tries the next provider.
	Want(from, to string, c cid.Cid) (blockstore.Block, error)
}

// Network registers engines by peer name and simulates the wire with a
// latency model.
type Network struct {
	mu      sync.RWMutex
	engines map[string]*Engine
	latency sim.LatencyModel
	clock   sim.Clock
}

// NewNetwork creates a bitswap network (nil latency = zero delay).
func NewNetwork(latency sim.LatencyModel, clock sim.Clock) *Network {
	if latency == nil {
		latency = sim.ZeroLatency{}
	}
	if clock == nil {
		clock = sim.RealClock{}
	}
	return &Network{engines: make(map[string]*Engine), latency: latency, clock: clock}
}

func (n *Network) lookup(name string) (*Engine, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	e, ok := n.engines[name]
	if !ok {
		return nil, fmt.Errorf("bitswap: unknown peer %q", name)
	}
	return e, nil
}

// Stats counts a peer's transfer activity.
type Stats struct {
	BlocksSent     atomic.Uint64
	BlocksReceived atomic.Uint64
	BytesSent      atomic.Uint64
	BytesReceived  atomic.Uint64
}

// Engine serves and fetches blocks for one peer.
type Engine struct {
	name  string
	bs    blockstore.Blockstore
	wire  Wire
	stats Stats

	mu       sync.Mutex
	wantlist map[cid.Cid]bool
}

// NewEngine registers a peer's engine over its blockstore.
func (n *Network) NewEngine(name string, bs blockstore.Blockstore) *Engine {
	e := &Engine{name: name, bs: bs, wire: n, wantlist: make(map[cid.Cid]bool)}
	n.mu.Lock()
	n.engines[name] = e
	n.mu.Unlock()
	return e
}

// Want implements Wire over the in-process network: a latency-delayed
// round trip to the named engine.
func (n *Network) Want(from, to string, c cid.Cid) (blockstore.Block, error) {
	remote, err := n.lookup(to)
	if err != nil {
		return blockstore.Block{}, err
	}
	n.clockDelay(from, to)
	b, ok := remote.handleWant(c)
	if !ok {
		return blockstore.Block{}, fmt.Errorf("bitswap: %s does not hold %s", to, c)
	}
	n.clockDelay(to, from)
	return b, nil
}

// Name returns the engine's peer name.
func (e *Engine) Name() string { return e.name }

// Stats exposes transfer counters.
func (e *Engine) Stats() *Stats { return &e.stats }

// Wantlist returns the currently wanted CIDs in deterministic order.
func (e *Engine) Wantlist() []cid.Cid {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]cid.Cid, 0, len(e.wantlist))
	for c := range e.wantlist {
		out = append(out, c)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func (e *Engine) want(c cid.Cid) {
	e.mu.Lock()
	e.wantlist[c] = true
	e.mu.Unlock()
}

func (e *Engine) unwant(c cid.Cid) {
	e.mu.Lock()
	delete(e.wantlist, c)
	e.mu.Unlock()
}

// handleWant is the server side: return the block if held locally.
func (e *Engine) handleWant(c cid.Cid) (blockstore.Block, bool) {
	b, err := e.bs.Get(c)
	if err != nil {
		return blockstore.Block{}, false
	}
	e.stats.BlocksSent.Add(1)
	e.stats.BytesSent.Add(uint64(len(b.Data)))
	return b, true
}

// FetchBlock retrieves one block from the given providers, trying each in
// order. The fetched block is verified (content addressing) and stored in
// the local blockstore.
func (e *Engine) FetchBlock(c cid.Cid, providers []string) (blockstore.Block, error) {
	if b, err := e.bs.Get(c); err == nil {
		return b, nil
	}
	e.want(c)
	defer e.unwant(c)
	for _, p := range providers {
		if p == e.name {
			continue
		}
		b, err := e.wire.Want(e.name, p, c)
		if err != nil {
			continue
		}
		// Put verifies the block's hash, so a corrupt or dishonest provider
		// cannot poison the store.
		if err := e.bs.Put(b); err != nil {
			continue
		}
		e.stats.BlocksReceived.Add(1)
		e.stats.BytesReceived.Add(uint64(len(b.Data)))
		return b, nil
	}
	return blockstore.Block{}, fmt.Errorf("%w: %s", ErrBlockUnavailable, c)
}

func (n *Network) clockDelay(from, to string) {
	if d := n.latency.Delay(from, to); d > 0 {
		n.clock.Sleep(d)
	}
}

// fetchConcurrency bounds parallel block fetches in FetchMany.
const fetchConcurrency = 8

// FetchMany retrieves a set of blocks in parallel from the providers,
// storing them locally. It fails fast on the first unavailable block.
func (e *Engine) FetchMany(cids []cid.Cid, providers []string) error {
	if len(cids) == 0 {
		return nil
	}
	sem := make(chan struct{}, fetchConcurrency)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for _, c := range cids {
		wg.Add(1)
		sem <- struct{}{}
		go func(c cid.Cid) {
			defer wg.Done()
			defer func() { <-sem }()
			if _, err := e.FetchBlock(c, providers); err != nil {
				mu.Lock()
				if firstErr == nil {
					firstErr = err
				}
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	return firstErr
}
