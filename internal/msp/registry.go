package msp

import (
	"fmt"
	"sort"
	"sync"
)

// Registry tracks the identities admitted to a channel, by organisation.
// Peers consult it to authenticate proposal creators and endorsers.
type Registry struct {
	mu    sync.RWMutex
	byID  map[string]Identity
	byOrg map[string][]string
}

// NewRegistry returns an empty identity registry.
func NewRegistry() *Registry {
	return &Registry{byID: make(map[string]Identity), byOrg: make(map[string][]string)}
}

// Register admits an identity. Registering the same ID twice is an error so
// that enrollment contracts can detect duplicates, mirroring the paper's
// enrollAdmin duplicate check.
func (r *Registry) Register(id Identity) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	key := id.ID()
	if _, ok := r.byID[key]; ok {
		return fmt.Errorf("msp: identity %s already registered", key)
	}
	r.byID[key] = id
	r.byOrg[id.Org] = append(r.byOrg[id.Org], key)
	return nil
}

// Lookup returns the identity registered under id ("org/name").
func (r *Registry) Lookup(id string) (Identity, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	got, ok := r.byID[id]
	return got, ok
}

// Orgs returns the sorted list of organisations with at least one identity.
func (r *Registry) Orgs() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	orgs := make([]string, 0, len(r.byOrg))
	for org := range r.byOrg {
		orgs = append(orgs, org)
	}
	sort.Strings(orgs)
	return orgs
}

// Members returns the sorted identity IDs of an organisation.
func (r *Registry) Members(org string) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := append([]string(nil), r.byOrg[org]...)
	sort.Strings(out)
	return out
}

// Len returns the number of registered identities.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.byID)
}
