package msp

import (
	"container/list"
	"crypto/ed25519"
	"crypto/sha256"
	"encoding/binary"
	"sync"

	"socialchain/internal/metrics"
	"socialchain/internal/obs"
)

// DefaultVerifyCacheSize bounds a VerifyCache built with size <= 0. The
// figure is sized for a 4-peer deployment's working set: every quorum
// message and endorsement in flight fits with room for gossip re-delivery.
const DefaultVerifyCacheSize = 4096

// VerifyCache memoises Ed25519 verification outcomes in a bounded LRU.
// Consensus re-verifies the same bytes many times — pre-prepare evidence is
// checked once per prepare (2f+1 times per sequence), endorsements once for
// the watchdog and again for the policy, and synced blocks repeat the
// original commit's work — but `(pubkey, msg, sig)` fully determines the
// verdict, so the second sight of a tuple can be answered from memory.
//
// Both positive and negative outcomes are cached: the key covers the whole
// tuple, so a forged signature caches as false and cannot later be upgraded
// (different bytes hash to a different key). A nil *VerifyCache is valid
// and falls through to direct verification, so call sites need no guards.
type VerifyCache struct {
	mu      sync.Mutex
	cap     int
	entries map[[32]byte]*list.Element
	order   *list.List // front = most recently used

	hits   metrics.Counter
	misses metrics.Counter
}

type verifyCacheEntry struct {
	key [32]byte
	ok  bool
}

// NewVerifyCache returns an LRU verify cache bounded to size entries
// (DefaultVerifyCacheSize when size <= 0).
func NewVerifyCache(size int) *VerifyCache {
	if size <= 0 {
		size = DefaultVerifyCacheSize
	}
	return &VerifyCache{
		cap:     size,
		entries: make(map[[32]byte]*list.Element, size),
		order:   list.New(),
	}
}

// verifyCacheKey collapses the (pubkey, msg, sig) tuple into a fixed key.
// Each field is length-framed so distinct tuples cannot collide by sliding
// bytes across field boundaries.
func verifyCacheKey(pub ed25519.PublicKey, msg, sig []byte) [32]byte {
	h := sha256.New()
	var frame [8]byte
	for _, field := range [][]byte{pub, msg, sig} {
		binary.BigEndian.PutUint64(frame[:], uint64(len(field)))
		h.Write(frame[:])
		h.Write(field)
	}
	var key [32]byte
	h.Sum(key[:0])
	return key
}

// Verify checks sig over msg for id, consulting the cache first. On a nil
// receiver it degrades to id.Verify.
func (c *VerifyCache) Verify(id Identity, msg, sig []byte) bool {
	if c == nil {
		return id.Verify(msg, sig)
	}
	key := verifyCacheKey(id.PubKey, msg, sig)
	if ok, cached := c.lookup(key); cached {
		return ok
	}
	ok := id.Verify(msg, sig)
	c.store(key, ok)
	return ok
}

// lookup returns (verdict, found) and promotes a found entry to MRU.
func (c *VerifyCache) lookup(key [32]byte) (bool, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, found := c.entries[key]
	if !found {
		c.misses.Inc()
		return false, false
	}
	c.order.MoveToFront(el)
	c.hits.Inc()
	return el.Value.(*verifyCacheEntry).ok, true
}

// store records a verdict, evicting the LRU entry at capacity.
func (c *VerifyCache) store(key [32]byte, ok bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, found := c.entries[key]; found {
		c.order.MoveToFront(el)
		el.Value.(*verifyCacheEntry).ok = ok
		return
	}
	if c.order.Len() >= c.cap {
		oldest := c.order.Back()
		if oldest != nil {
			c.order.Remove(oldest)
			delete(c.entries, oldest.Value.(*verifyCacheEntry).key)
		}
	}
	c.entries[key] = c.order.PushFront(&verifyCacheEntry{key: key, ok: ok})
}

// Register publishes the cache's hit/miss counters into an obs registry
// (nil-safe on both sides): the hot-path accounting that previously only
// tests could reach becomes scrapeable at /metrics.
func (c *VerifyCache) Register(reg *obs.Registry) {
	if c == nil {
		return
	}
	reg.CounterFunc("verify_cache_hits_total", "Signature verifications answered from the verify cache.", c.hits.Load)
	reg.CounterFunc("verify_cache_misses_total", "Signature verifications that ran ed25519.", c.misses.Load)
}

// Hits reports cache hits (nil-safe).
func (c *VerifyCache) Hits() int64 {
	if c == nil {
		return 0
	}
	return c.hits.Load()
}

// Misses reports cache misses (nil-safe).
func (c *VerifyCache) Misses() int64 {
	if c == nil {
		return 0
	}
	return c.misses.Load()
}

// Len reports the resident entry count (nil-safe).
func (c *VerifyCache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.order.Len()
}
