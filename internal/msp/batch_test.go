package msp

import (
	"fmt"
	"math/rand"
	"testing"
)

// batchSigners generates n keypairs for batch tests.
func batchSigners(t testing.TB, n int) []*Signer {
	t.Helper()
	out := make([]*Signer, n)
	for i := range out {
		s, err := NewSigner("org", fmt.Sprintf("s%d", i), RoleMember)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = s
	}
	return out
}

// randomItems builds n verify items over random messages, each signed by a
// random signer; corrupt selects indices whose signature (or message) is
// then flipped.
func randomItems(t testing.TB, rng *rand.Rand, signers []*Signer, n int, corrupt map[int]bool) []VerifyItem {
	t.Helper()
	items := make([]VerifyItem, n)
	for i := range items {
		s := signers[rng.Intn(len(signers))]
		msg := make([]byte, 1+rng.Intn(128))
		rng.Read(msg)
		sig := s.Sign(msg)
		if corrupt[i] {
			switch rng.Intn(3) {
			case 0:
				sig[rng.Intn(len(sig))] ^= 0x01
			case 1:
				msg[rng.Intn(len(msg))] ^= 0x01
			default:
				sig = sig[:len(sig)-1] // malformed length must reject, not panic
			}
		}
		items[i] = VerifyItem{Identity: s.Identity, Message: msg, Signature: sig}
	}
	return items
}

// TestVerifyBatchEquivalenceRandomized is the randomized equivalence fuzz:
// across many random batches — varying sizes, signer reuse, duplicate
// tuples, corrupted subsets — VerifyBatchEach must agree item-for-item with
// per-signature Identity.Verify, and VerifyBatch with the conjunction. The
// cache-aware paths must agree too, both cold and warm.
func TestVerifyBatchEquivalenceRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	signers := batchSigners(t, 5)
	for round := 0; round < 60; round++ {
		n := rng.Intn(40)
		corrupt := map[int]bool{}
		for i := 0; i < n; i++ {
			if rng.Intn(4) == 0 {
				corrupt[i] = true
			}
		}
		items := randomItems(t, rng, signers, n, corrupt)
		// Inject duplicates: copy earlier items over later slots.
		for i := range items {
			if i > 0 && rng.Intn(5) == 0 {
				items[i] = items[rng.Intn(i)]
			}
		}
		want := make([]bool, len(items))
		allValid := true
		for i, it := range items {
			want[i] = it.Identity.Verify(it.Message, it.Signature)
			allValid = allValid && want[i]
		}
		check := func(name string, got []bool) {
			t.Helper()
			if len(got) != len(want) {
				t.Fatalf("round %d %s: %d verdicts for %d items", round, name, len(got), len(items))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("round %d %s: item %d = %v, per-signature Verify = %v", round, name, i, got[i], want[i])
				}
			}
		}
		check("uncached", VerifyBatchEach(items))
		if VerifyBatch(items) != allValid {
			t.Fatalf("round %d: VerifyBatch = %v, want %v", round, !allValid, allValid)
		}
		cache := NewVerifyCache(0)
		check("cache-cold", cache.VerifyBatchEach(items))
		check("cache-warm", cache.VerifyBatchEach(items))
		if cache.VerifyBatch(items) != allValid {
			t.Fatalf("round %d: cached VerifyBatch = %v, want %v", round, !allValid, allValid)
		}
	}
}

// TestVerifyBatchCorruptedOneOfN checks that a single corrupted signature
// anywhere in an otherwise valid batch is rejected — for every position.
func TestVerifyBatchCorruptedOneOfN(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	signers := batchSigners(t, 3)
	const n = 12
	for bad := 0; bad < n; bad++ {
		items := randomItems(t, rng, signers, n, map[int]bool{bad: true})
		if VerifyBatch(items) {
			t.Fatalf("batch with corrupted item %d accepted", bad)
		}
		each := VerifyBatchEach(items)
		if each[bad] {
			t.Fatalf("corrupted item %d verified", bad)
		}
		good := 0
		for i, ok := range each {
			if i != bad && ok {
				good++
			}
		}
		if good != n-1 {
			t.Fatalf("corrupting item %d poisoned others: %d/%d valid", bad, good, n-1)
		}
	}
}

// TestVerifyBatchEmptyAndDuplicates pins the edge cases: an empty batch is
// vacuously valid, and a batch of one tuple repeated N times agrees with
// the single verification (both verdicts).
func TestVerifyBatchEmptyAndDuplicates(t *testing.T) {
	if !VerifyBatch(nil) {
		t.Fatal("empty batch rejected")
	}
	if got := VerifyBatchEach(nil); len(got) != 0 {
		t.Fatalf("empty batch produced %d verdicts", len(got))
	}
	s := batchSigners(t, 1)[0]
	msg := []byte("dup")
	sig := s.Sign(msg)
	dup := make([]VerifyItem, 8)
	for i := range dup {
		dup[i] = VerifyItem{Identity: s.Identity, Message: msg, Signature: sig}
	}
	for i, ok := range VerifyBatchEach(dup) {
		if !ok {
			t.Fatalf("duplicate item %d rejected", i)
		}
	}
	bad := append([]byte(nil), sig...)
	bad[0] ^= 0xFF
	for i := range dup {
		dup[i].Signature = bad
	}
	for i, ok := range VerifyBatchEach(dup) {
		if ok {
			t.Fatalf("duplicated bad item %d accepted", i)
		}
	}
}

// TestVerifyCacheBasics covers hit/miss accounting, negative caching and
// the nil-receiver fallback.
func TestVerifyCacheBasics(t *testing.T) {
	s := batchSigners(t, 1)[0]
	msg := []byte("cached message")
	sig := s.Sign(msg)
	c := NewVerifyCache(8)
	if !c.Verify(s.Identity, msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if c.Hits() != 0 || c.Misses() != 1 {
		t.Fatalf("after first verify: hits=%d misses=%d", c.Hits(), c.Misses())
	}
	if !c.Verify(s.Identity, msg, sig) {
		t.Fatal("cached valid signature rejected")
	}
	if c.Hits() != 1 {
		t.Fatalf("second verify did not hit: hits=%d", c.Hits())
	}
	// Negative result caches under its own key and stays negative.
	bad := append([]byte(nil), sig...)
	bad[3] ^= 0x10
	for i := 0; i < 2; i++ {
		if c.Verify(s.Identity, msg, bad) {
			t.Fatal("bad signature accepted")
		}
	}
	if c.Hits() != 2 {
		t.Fatalf("negative entry did not hit: hits=%d", c.Hits())
	}
	// Nil receiver falls through to direct verification.
	var nilCache *VerifyCache
	if !nilCache.Verify(s.Identity, msg, sig) || nilCache.Verify(s.Identity, msg, bad) {
		t.Fatal("nil cache verification wrong")
	}
	if nilCache.Hits() != 0 || nilCache.Misses() != 0 || nilCache.Len() != 0 {
		t.Fatal("nil cache stats not zero")
	}
}

// TestVerifyCacheEviction checks the LRU bound: capacity is respected and
// the least recently used entry is the one evicted.
func TestVerifyCacheEviction(t *testing.T) {
	s := batchSigners(t, 1)[0]
	c := NewVerifyCache(4)
	msgs := make([][]byte, 6)
	sigs := make([][]byte, 6)
	for i := range msgs {
		msgs[i] = []byte(fmt.Sprintf("msg-%d", i))
		sigs[i] = s.Sign(msgs[i])
	}
	for i := 0; i < 4; i++ {
		c.Verify(s.Identity, msgs[i], sigs[i])
	}
	if c.Len() != 4 {
		t.Fatalf("len=%d, want 4", c.Len())
	}
	// Touch entry 0 so entry 1 is the LRU, then insert two more.
	c.Verify(s.Identity, msgs[0], sigs[0])
	c.Verify(s.Identity, msgs[4], sigs[4])
	c.Verify(s.Identity, msgs[5], sigs[5])
	if c.Len() != 4 {
		t.Fatalf("len=%d after eviction, want 4", c.Len())
	}
	miss := c.Misses()
	c.Verify(s.Identity, msgs[0], sigs[0]) // touched: still resident
	if c.Misses() != miss {
		t.Fatal("recently used entry was evicted")
	}
	c.Verify(s.Identity, msgs[1], sigs[1]) // LRU: must have been evicted
	if c.Misses() != miss+1 {
		t.Fatal("LRU entry was not evicted")
	}
}

// TestVerifyCacheKeyCoversTuple checks that no field of the (pubkey, msg,
// sig) tuple can be swapped without changing the cache key — a cached
// verdict must never answer for a different tuple.
func TestVerifyCacheKeyCoversTuple(t *testing.T) {
	ss := batchSigners(t, 2)
	msg := []byte("tuple")
	sig0 := ss[0].Sign(msg)
	c := NewVerifyCache(16)
	if !c.Verify(ss[0].Identity, msg, sig0) {
		t.Fatal("valid rejected")
	}
	// Same msg+sig under the other identity must be a miss and fail.
	if c.Verify(ss[1].Identity, msg, sig0) {
		t.Fatal("verdict leaked across identities")
	}
	// Length-framing: shifting a byte between msg and sig changes the key.
	joined := append(append([]byte(nil), msg...), sig0...)
	if c.Verify(ss[0].Identity, joined[:len(msg)+1], joined[len(msg)+1:]) {
		t.Fatal("sliding frame boundary verified")
	}
}

// TestEvaluateVerifiedMatchesEvaluate checks the pre-verified policy path
// agrees with full evaluation for every built-in policy, including when
// verdicts mark endorsements invalid.
func TestEvaluateVerifiedMatchesEvaluate(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	digest := []byte("policy-digest")
	signers := batchSigners(t, 7)
	policies := []Policy{
		TwoThirds(7),
		QuorumPolicy{Threshold: 3, Total: 7},
		OrgCoveragePolicy{Threshold: 2, MinOrgs: 1},
		AnyValid{},
	}
	for round := 0; round < 40; round++ {
		var ends []Endorsement
		for _, s := range signers {
			if rng.Intn(3) == 0 {
				continue
			}
			e := Endorsement{Endorser: s.Identity, Digest: digest, Signature: s.Sign(digest)}
			if rng.Intn(4) == 0 {
				e.Signature[0] ^= 0xFF
			}
			ends = append(ends, e)
		}
		verdicts := make([]bool, len(ends))
		for i, e := range ends {
			verdicts[i] = e.Verify()
		}
		for _, p := range policies {
			full := p.Evaluate(digest, ends)
			pre := EvaluateVerified(p, digest, ends, verdicts)
			if (full == nil) != (pre == nil) {
				t.Fatalf("round %d %s: Evaluate=%v EvaluateVerified=%v", round, p.Describe(), full, pre)
			}
		}
	}
}
