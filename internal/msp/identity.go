// Package msp implements the membership service provider of the permissioned
// blockchain: Ed25519 identities, signing, organisation registries and the
// signature/endorsement policies that gate transaction validity. It plays
// the role of Hyperledger Fabric's MSP and of the "digital signatures"
// attached to every submission in the paper's Figure 1.
package msp

import (
	"crypto/ed25519"
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
)

// Role classifies what an identity is allowed to do on the network.
type Role string

const (
	// RoleAdmin may enroll users and administer the channel.
	RoleAdmin Role = "admin"
	// RoleMember is an ordinary organisation member (peers, clients).
	RoleMember Role = "member"
	// RoleTrustedSource marks institution-grade data sources such as the
	// paper's traffic cameras and drones.
	RoleTrustedSource Role = "trusted-source"
	// RoleUntrustedSource marks crowd-sourced contributors (mobile users,
	// social media) whose submissions are gated by trust scores.
	RoleUntrustedSource Role = "untrusted-source"
)

// Identity is the public half of a network participant: who they are, which
// organisation vouches for them, and their verification key.
type Identity struct {
	Org    string            `json:"org"`
	Name   string            `json:"name"`
	Role   Role              `json:"role"`
	PubKey ed25519.PublicKey `json:"pub_key"`
}

// ID returns a stable textual identifier "org/name".
func (id Identity) ID() string { return id.Org + "/" + id.Name }

// Fingerprint returns a short hex digest of the public key, used in logs and
// provenance records.
func (id Identity) Fingerprint() string {
	sum := sha256.Sum256(id.PubKey)
	return hex.EncodeToString(sum[:8])
}

// Verify reports whether sig is a valid signature by this identity over msg.
func (id Identity) Verify(msg, sig []byte) bool {
	if len(id.PubKey) != ed25519.PublicKeySize || len(sig) != ed25519.SignatureSize {
		return false
	}
	return ed25519.Verify(id.PubKey, msg, sig)
}

// Marshal serialises the identity for embedding as a transaction creator.
func (id Identity) Marshal() ([]byte, error) { return json.Marshal(id) }

// UnmarshalIdentity parses an identity serialised with Marshal.
func UnmarshalIdentity(b []byte) (Identity, error) {
	var id Identity
	if err := json.Unmarshal(b, &id); err != nil {
		return Identity{}, fmt.Errorf("msp: unmarshal identity: %w", err)
	}
	if len(id.PubKey) != ed25519.PublicKeySize {
		return Identity{}, errors.New("msp: identity has malformed public key")
	}
	return id, nil
}

// Signer couples an Identity with its private key.
type Signer struct {
	Identity
	priv ed25519.PrivateKey
}

// NewSigner generates a fresh Ed25519 keypair for org/name with the given
// role.
func NewSigner(org, name string, role Role) (*Signer, error) {
	pub, priv, err := ed25519.GenerateKey(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("msp: generate key: %w", err)
	}
	return &Signer{
		Identity: Identity{Org: org, Name: name, Role: role, PubKey: pub},
		priv:     priv,
	}, nil
}

// NewSignerFromSeed derives a deterministic Ed25519 keypair for org/name
// from a shared deployment seed: the same (seed, org, name, role) yields
// the same key in every process, which is how the separate OS processes of
// one networked deployment agree on peer identities without exchanging
// certificates. An empty seed is rejected by callers that need real
// secrecy; the derivation itself is seed-strength-only.
func NewSignerFromSeed(seed, org, name string, role Role) *Signer {
	h := sha256.Sum256([]byte("socialchain-msp\x00" + seed + "\x00" + org + "\x00" + name + "\x00" + string(role)))
	priv := ed25519.NewKeyFromSeed(h[:])
	return &Signer{
		Identity: Identity{Org: org, Name: name, Role: role, PubKey: priv.Public().(ed25519.PublicKey)},
		priv:     priv,
	}
}

// Sign returns the Ed25519 signature of msg.
func (s *Signer) Sign(msg []byte) []byte {
	return ed25519.Sign(s.priv, msg)
}

// SignedMessage bundles a payload with its creator and signature, the wire
// form in which clients submit data to the framework.
type SignedMessage struct {
	Creator   Identity `json:"creator"`
	Payload   []byte   `json:"payload"`
	Signature []byte   `json:"signature"`
}

// NewSignedMessage signs payload with s.
func NewSignedMessage(s *Signer, payload []byte) SignedMessage {
	return SignedMessage{Creator: s.Identity, Payload: payload, Signature: s.Sign(payload)}
}

// Verify checks the embedded signature against the embedded creator.
func (m SignedMessage) Verify() bool {
	return m.Creator.Verify(m.Payload, m.Signature)
}
