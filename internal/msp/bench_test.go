package msp

import "testing"

func BenchmarkSign(b *testing.B) {
	s, err := NewSigner("org", "bench", RoleMember)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	s, err := NewSigner("org", "bench", RoleMember)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 256)
	sig := s.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Identity.Verify(msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

// benchItems builds a batch of n distinct signed envelopes.
func benchItems(b *testing.B, n int) []VerifyItem {
	b.Helper()
	items := make([]VerifyItem, n)
	for i := range items {
		s, err := NewSigner("org", string(rune('a'+i%26)), RoleMember)
		if err != nil {
			b.Fatal(err)
		}
		msg := make([]byte, 256)
		msg[0] = byte(i)
		msg[1] = byte(i >> 8)
		items[i] = VerifyItem{Identity: s.Identity, Message: msg, Signature: s.Sign(msg)}
	}
	return items
}

// BenchmarkVerifySerial32 is the baseline the batch path is measured
// against: 32 envelopes verified one at a time.
func BenchmarkVerifySerial32(b *testing.B) {
	items := benchItems(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, it := range items {
			if !it.Identity.Verify(it.Message, it.Signature) {
				b.Fatal("verify failed")
			}
		}
	}
}

// BenchmarkVerifyBatch32 verifies the same 32 envelopes through the
// parallel batch verifier.
func BenchmarkVerifyBatch32(b *testing.B) {
	items := benchItems(b, 32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !VerifyBatch(items) {
			b.Fatal("batch verify failed")
		}
	}
}

// BenchmarkVerifyCached32 re-verifies a warm batch through the verify
// cache — the gossip/re-endorsement steady state.
func BenchmarkVerifyCached32(b *testing.B) {
	items := benchItems(b, 32)
	c := NewVerifyCache(0)
	if !c.VerifyBatch(items) {
		b.Fatal("warm-up failed")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !c.VerifyBatch(items) {
			b.Fatal("cached batch verify failed")
		}
	}
}

func BenchmarkQuorumPolicyEvaluate(b *testing.B) {
	digest := []byte("digest-to-endorse-0123456789abcd")
	var ends []Endorsement
	for i := 0; i < 7; i++ {
		s, err := NewSigner("org", string(rune('a'+i)), RoleMember)
		if err != nil {
			b.Fatal(err)
		}
		ends = append(ends, Endorsement{Endorser: s.Identity, Digest: digest, Signature: s.Sign(digest)})
	}
	pol := TwoThirds(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pol.Evaluate(digest, ends); err != nil {
			b.Fatal(err)
		}
	}
}
