package msp

import "testing"

func BenchmarkSign(b *testing.B) {
	s, err := NewSigner("org", "bench", RoleMember)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Sign(msg)
	}
}

func BenchmarkVerify(b *testing.B) {
	s, err := NewSigner("org", "bench", RoleMember)
	if err != nil {
		b.Fatal(err)
	}
	msg := make([]byte, 256)
	sig := s.Sign(msg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !s.Identity.Verify(msg, sig) {
			b.Fatal("verify failed")
		}
	}
}

func BenchmarkQuorumPolicyEvaluate(b *testing.B) {
	digest := []byte("digest-to-endorse-0123456789abcd")
	var ends []Endorsement
	for i := 0; i < 7; i++ {
		s, err := NewSigner("org", string(rune('a'+i)), RoleMember)
		if err != nil {
			b.Fatal(err)
		}
		ends = append(ends, Endorsement{Endorser: s.Identity, Digest: digest, Signature: s.Sign(digest)})
	}
	pol := TwoThirds(7)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := pol.Evaluate(digest, ends); err != nil {
			b.Fatal(err)
		}
	}
}
