package msp

import (
	"errors"
	"fmt"
)

// Endorsement is a signed statement by a peer that it executed a proposal
// and observed a particular result digest.
type Endorsement struct {
	Endorser  Identity `json:"endorser"`
	Digest    []byte   `json:"digest"`
	Signature []byte   `json:"signature"`
}

// Verify reports whether the endorsement's signature covers the digest.
func (e Endorsement) Verify() bool {
	return e.Endorser.Verify(e.Digest, e.Signature)
}

// Policy decides whether a set of endorsements satisfies a channel's
// endorsement requirement. Implementations must tolerate duplicate and
// invalid endorsements (they are simply not counted).
type Policy interface {
	// Evaluate returns nil when the endorsements satisfy the policy for the
	// given result digest.
	Evaluate(digest []byte, endorsements []Endorsement) error
	// Describe returns a human-readable statement of the requirement.
	Describe() string
}

// countValid tallies endorsements that verify, match digest, and come from
// distinct endorsers.
func countValid(digest []byte, endorsements []Endorsement) (int, map[string]int) {
	return countValidWith(digest, endorsements, verifyDirect)
}

// verifyDirect is countValidWith's default verifier: check the signature.
func verifyDirect(_ int, e Endorsement) bool { return e.Verify() }

// countValidWith is countValid with the signature check abstracted, so
// callers that already verified the batch (peer block validation) can
// supply their verdicts instead of paying ed25519.Verify a second time.
func countValidWith(digest []byte, endorsements []Endorsement, verify func(int, Endorsement) bool) (int, map[string]int) {
	seen := make(map[string]bool)
	perOrg := make(map[string]int)
	n := 0
	for i, e := range endorsements {
		id := e.Endorser.ID()
		if seen[id] {
			continue
		}
		if !bytesEqual(e.Digest, digest) {
			continue
		}
		if !verify(i, e) {
			continue
		}
		seen[id] = true
		perOrg[e.Endorser.Org]++
		n++
	}
	return n, perOrg
}

// verdictFunc adapts a precomputed verdict slice (verified[i] is the
// outcome of endorsements[i].Verify()) into a countValidWith verifier.
// Indices beyond the slice fall back to direct verification.
func verdictFunc(verified []bool) func(int, Endorsement) bool {
	return func(i int, e Endorsement) bool {
		if i < len(verified) {
			return verified[i]
		}
		return e.Verify()
	}
}

// verifiedPolicy is implemented by the policies in this package to accept
// caller-supplied signature verdicts.
type verifiedPolicy interface {
	evaluateVerified(digest []byte, endorsements []Endorsement, verified []bool) error
}

// EvaluateVerified evaluates p against endorsements whose signatures the
// caller has already checked — verified[i] must be the outcome of
// endorsements[i].Verify(). The built-in policies skip re-verification;
// third-party Policy implementations fall back to a full Evaluate, which
// is always sound (merely slower).
func EvaluateVerified(p Policy, digest []byte, endorsements []Endorsement, verified []bool) error {
	if vp, ok := p.(verifiedPolicy); ok {
		return vp.evaluateVerified(digest, endorsements, verified)
	}
	return p.Evaluate(digest, endorsements)
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// QuorumPolicy requires at least Threshold distinct valid endorsements out
// of Total known endorsers. TwoThirds constructs the paper's ≥2/3 rule.
type QuorumPolicy struct {
	Threshold int
	Total     int
}

// TwoThirds returns the quorum policy of §III: a transaction is legitimate
// when at least two-thirds of the n peers endorse it.
func TwoThirds(n int) QuorumPolicy {
	// ceil(2n/3)
	return QuorumPolicy{Threshold: (2*n + 2) / 3, Total: n}
}

// Evaluate implements Policy.
func (p QuorumPolicy) Evaluate(digest []byte, endorsements []Endorsement) error {
	return p.evaluate(digest, endorsements, verifyDirect)
}

func (p QuorumPolicy) evaluateVerified(digest []byte, endorsements []Endorsement, verified []bool) error {
	return p.evaluate(digest, endorsements, verdictFunc(verified))
}

func (p QuorumPolicy) evaluate(digest []byte, endorsements []Endorsement, verify func(int, Endorsement) bool) error {
	if p.Threshold <= 0 {
		return errors.New("msp: quorum policy with non-positive threshold")
	}
	n, _ := countValidWith(digest, endorsements, verify)
	if n < p.Threshold {
		return fmt.Errorf("msp: endorsement policy not satisfied: %d/%d valid endorsements, need %d", n, p.Total, p.Threshold)
	}
	return nil
}

// Describe implements Policy.
func (p QuorumPolicy) Describe() string {
	return fmt.Sprintf("%d of %d endorsers", p.Threshold, p.Total)
}

// OrgCoveragePolicy additionally requires endorsements from at least
// MinOrgs distinct organisations, modelling Fabric's AND(Org1, Org2, ...)
// policies for multi-stakeholder channels.
type OrgCoveragePolicy struct {
	Threshold int
	MinOrgs   int
}

// Evaluate implements Policy.
func (p OrgCoveragePolicy) Evaluate(digest []byte, endorsements []Endorsement) error {
	return p.evaluate(digest, endorsements, verifyDirect)
}

func (p OrgCoveragePolicy) evaluateVerified(digest []byte, endorsements []Endorsement, verified []bool) error {
	return p.evaluate(digest, endorsements, verdictFunc(verified))
}

func (p OrgCoveragePolicy) evaluate(digest []byte, endorsements []Endorsement, verify func(int, Endorsement) bool) error {
	n, perOrg := countValidWith(digest, endorsements, verify)
	if n < p.Threshold {
		return fmt.Errorf("msp: need %d endorsements, have %d", p.Threshold, n)
	}
	if len(perOrg) < p.MinOrgs {
		return fmt.Errorf("msp: need endorsements from %d orgs, have %d", p.MinOrgs, len(perOrg))
	}
	return nil
}

// Describe implements Policy.
func (p OrgCoveragePolicy) Describe() string {
	return fmt.Sprintf("%d endorsers across >=%d orgs", p.Threshold, p.MinOrgs)
}

// AnyValid accepts a single valid endorsement; used for read-only queries.
type AnyValid struct{}

// Evaluate implements Policy.
func (AnyValid) Evaluate(digest []byte, endorsements []Endorsement) error {
	n, _ := countValid(digest, endorsements)
	if n < 1 {
		return errors.New("msp: no valid endorsement")
	}
	return nil
}

func (AnyValid) evaluateVerified(digest []byte, endorsements []Endorsement, verified []bool) error {
	n, _ := countValidWith(digest, endorsements, verdictFunc(verified))
	if n < 1 {
		return errors.New("msp: no valid endorsement")
	}
	return nil
}

// Describe implements Policy.
func (AnyValid) Describe() string { return "any single endorser" }
