package msp

import (
	"errors"
	"fmt"
)

// Endorsement is a signed statement by a peer that it executed a proposal
// and observed a particular result digest.
type Endorsement struct {
	Endorser  Identity `json:"endorser"`
	Digest    []byte   `json:"digest"`
	Signature []byte   `json:"signature"`
}

// Verify reports whether the endorsement's signature covers the digest.
func (e Endorsement) Verify() bool {
	return e.Endorser.Verify(e.Digest, e.Signature)
}

// Policy decides whether a set of endorsements satisfies a channel's
// endorsement requirement. Implementations must tolerate duplicate and
// invalid endorsements (they are simply not counted).
type Policy interface {
	// Evaluate returns nil when the endorsements satisfy the policy for the
	// given result digest.
	Evaluate(digest []byte, endorsements []Endorsement) error
	// Describe returns a human-readable statement of the requirement.
	Describe() string
}

// countValid tallies endorsements that verify, match digest, and come from
// distinct endorsers.
func countValid(digest []byte, endorsements []Endorsement) (int, map[string]int) {
	seen := make(map[string]bool)
	perOrg := make(map[string]int)
	n := 0
	for _, e := range endorsements {
		id := e.Endorser.ID()
		if seen[id] {
			continue
		}
		if !bytesEqual(e.Digest, digest) {
			continue
		}
		if !e.Verify() {
			continue
		}
		seen[id] = true
		perOrg[e.Endorser.Org]++
		n++
	}
	return n, perOrg
}

func bytesEqual(a, b []byte) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// QuorumPolicy requires at least Threshold distinct valid endorsements out
// of Total known endorsers. TwoThirds constructs the paper's ≥2/3 rule.
type QuorumPolicy struct {
	Threshold int
	Total     int
}

// TwoThirds returns the quorum policy of §III: a transaction is legitimate
// when at least two-thirds of the n peers endorse it.
func TwoThirds(n int) QuorumPolicy {
	// ceil(2n/3)
	return QuorumPolicy{Threshold: (2*n + 2) / 3, Total: n}
}

// Evaluate implements Policy.
func (p QuorumPolicy) Evaluate(digest []byte, endorsements []Endorsement) error {
	if p.Threshold <= 0 {
		return errors.New("msp: quorum policy with non-positive threshold")
	}
	n, _ := countValid(digest, endorsements)
	if n < p.Threshold {
		return fmt.Errorf("msp: endorsement policy not satisfied: %d/%d valid endorsements, need %d", n, p.Total, p.Threshold)
	}
	return nil
}

// Describe implements Policy.
func (p QuorumPolicy) Describe() string {
	return fmt.Sprintf("%d of %d endorsers", p.Threshold, p.Total)
}

// OrgCoveragePolicy additionally requires endorsements from at least
// MinOrgs distinct organisations, modelling Fabric's AND(Org1, Org2, ...)
// policies for multi-stakeholder channels.
type OrgCoveragePolicy struct {
	Threshold int
	MinOrgs   int
}

// Evaluate implements Policy.
func (p OrgCoveragePolicy) Evaluate(digest []byte, endorsements []Endorsement) error {
	n, perOrg := countValid(digest, endorsements)
	if n < p.Threshold {
		return fmt.Errorf("msp: need %d endorsements, have %d", p.Threshold, n)
	}
	if len(perOrg) < p.MinOrgs {
		return fmt.Errorf("msp: need endorsements from %d orgs, have %d", p.MinOrgs, len(perOrg))
	}
	return nil
}

// Describe implements Policy.
func (p OrgCoveragePolicy) Describe() string {
	return fmt.Sprintf("%d endorsers across >=%d orgs", p.Threshold, p.MinOrgs)
}

// AnyValid accepts a single valid endorsement; used for read-only queries.
type AnyValid struct{}

// Evaluate implements Policy.
func (AnyValid) Evaluate(digest []byte, endorsements []Endorsement) error {
	n, _ := countValid(digest, endorsements)
	if n < 1 {
		return errors.New("msp: no valid endorsement")
	}
	return nil
}

// Describe implements Policy.
func (AnyValid) Describe() string { return "any single endorser" }
