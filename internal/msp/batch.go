package msp

import (
	"runtime"
	"sync"
)

// VerifyItem is one signature check in a batch: did Identity sign Message
// with Signature?
type VerifyItem struct {
	Identity  Identity
	Message   []byte
	Signature []byte
}

// VerifyBatch checks every item and reports whether all verify — the
// all-or-nothing contract of ed25519 batch verification. The standard
// library exposes no true batch equation, so the amortisation here comes
// from deduplicating identical tuples (gossip and quorum traffic repeat
// them heavily) and fanning the residual independent verifications across
// cores. An empty batch is vacuously valid.
func VerifyBatch(items []VerifyItem) bool {
	for _, ok := range VerifyBatchEach(items) {
		if !ok {
			return false
		}
	}
	return true
}

// VerifyBatchEach checks every item and returns a per-item verdict slice,
// for callers (block validation) that must flag individual failures rather
// than reject the whole batch. Duplicate tuples are verified once.
func VerifyBatchEach(items []VerifyItem) []bool {
	return verifyBatchEach(nil, items)
}

// VerifyBatchEach is the cache-aware batch check: cached tuples are
// answered from memory, the remaining misses are deduplicated, verified in
// parallel and stored back. A nil receiver degrades to the uncached path.
func (c *VerifyCache) VerifyBatchEach(items []VerifyItem) []bool {
	return verifyBatchEach(c, items)
}

// VerifyBatch is the cache-aware all-or-nothing batch check.
func (c *VerifyCache) VerifyBatch(items []VerifyItem) bool {
	for _, ok := range verifyBatchEach(c, items) {
		if !ok {
			return false
		}
	}
	return true
}

func verifyBatchEach(c *VerifyCache, items []VerifyItem) []bool {
	if len(items) == 0 {
		return nil
	}
	results := make([]bool, len(items))

	// Resolve cache hits and collapse duplicate tuples so each distinct
	// (pubkey, msg, sig) hits ed25519.Verify at most once per batch.
	type job struct {
		key   [32]byte
		first int   // index whose verdict the group shares
		rest  []int // further indices with the identical tuple
	}
	groups := make(map[[32]byte]*job, len(items))
	var jobs []*job
	for i, it := range items {
		key := verifyCacheKey(it.Identity.PubKey, it.Message, it.Signature)
		if c != nil {
			if ok, cached := c.lookup(key); cached {
				results[i] = ok
				continue
			}
		}
		if g, dup := groups[key]; dup {
			g.rest = append(g.rest, i)
			continue
		}
		g := &job{key: key, first: i}
		groups[key] = g
		jobs = append(jobs, g)
	}
	if len(jobs) == 0 {
		return results
	}

	// Fan the distinct misses across cores; small batches stay serial to
	// avoid goroutine overhead dominating a couple of verifications.
	workers := runtime.GOMAXPROCS(0)
	if workers > len(jobs) {
		workers = len(jobs)
	}
	if workers <= 1 || len(jobs) < 4 {
		for _, g := range jobs {
			it := items[g.first]
			results[g.first] = it.Identity.Verify(it.Message, it.Signature)
		}
	} else {
		var wg sync.WaitGroup
		next := make(chan *job)
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				for g := range next {
					it := items[g.first]
					results[g.first] = it.Identity.Verify(it.Message, it.Signature)
				}
			}()
		}
		for _, g := range jobs {
			next <- g
		}
		close(next)
		wg.Wait()
	}

	// Propagate group verdicts to duplicates and populate the cache.
	for _, g := range jobs {
		ok := results[g.first]
		for _, i := range g.rest {
			results[i] = ok
		}
		if c != nil {
			c.store(g.key, ok)
		}
	}
	return results
}
