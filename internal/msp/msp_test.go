package msp

import (
	"testing"
	"testing/quick"
)

func newTestSigner(t *testing.T, org, name string, role Role) *Signer {
	t.Helper()
	s, err := NewSigner(org, name, role)
	if err != nil {
		t.Fatalf("NewSigner: %v", err)
	}
	return s
}

func TestSignVerify(t *testing.T) {
	s := newTestSigner(t, "org1", "alice", RoleMember)
	msg := []byte("hello world")
	sig := s.Sign(msg)
	if !s.Identity.Verify(msg, sig) {
		t.Fatal("valid signature rejected")
	}
	if s.Identity.Verify([]byte("tampered"), sig) {
		t.Fatal("signature verified over wrong message")
	}
	other := newTestSigner(t, "org1", "bob", RoleMember)
	if other.Identity.Verify(msg, sig) {
		t.Fatal("signature verified by wrong identity")
	}
}

func TestVerifyRejectsMalformedInputs(t *testing.T) {
	s := newTestSigner(t, "org1", "alice", RoleMember)
	if s.Identity.Verify([]byte("m"), []byte("short")) {
		t.Fatal("short signature accepted")
	}
	bad := Identity{Org: "x", Name: "y", PubKey: []byte{1, 2, 3}}
	if bad.Verify([]byte("m"), make([]byte, 64)) {
		t.Fatal("malformed key accepted")
	}
}

func TestIdentityRoundTrip(t *testing.T) {
	s := newTestSigner(t, "cityorg", "cam-7", RoleTrustedSource)
	b, err := s.Identity.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalIdentity(b)
	if err != nil {
		t.Fatal(err)
	}
	if got.ID() != "cityorg/cam-7" || got.Role != RoleTrustedSource {
		t.Fatalf("round trip lost fields: %+v", got)
	}
	// The unmarshalled identity still verifies signatures.
	msg := []byte("payload")
	if !got.Verify(msg, s.Sign(msg)) {
		t.Fatal("round-tripped identity cannot verify")
	}
}

func TestUnmarshalIdentityRejectsGarbage(t *testing.T) {
	if _, err := UnmarshalIdentity([]byte("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := UnmarshalIdentity([]byte(`{"org":"a","name":"b","pub_key":"AQID"}`)); err == nil {
		t.Fatal("malformed key length accepted")
	}
}

func TestSignedMessage(t *testing.T) {
	s := newTestSigner(t, "crowd", "mobile-1", RoleUntrustedSource)
	m := NewSignedMessage(s, []byte("observation"))
	if !m.Verify() {
		t.Fatal("fresh signed message invalid")
	}
	m.Payload = append(m.Payload, 'x')
	if m.Verify() {
		t.Fatal("tampered payload verified")
	}
}

func TestSignedMessagePropertyAnyPayload(t *testing.T) {
	s := newTestSigner(t, "o", "n", RoleMember)
	err := quick.Check(func(payload []byte) bool {
		m := NewSignedMessage(s, payload)
		return m.Verify()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestFingerprintStable(t *testing.T) {
	s := newTestSigner(t, "o", "n", RoleMember)
	if s.Identity.Fingerprint() != s.Identity.Fingerprint() {
		t.Fatal("fingerprint unstable")
	}
	if len(s.Identity.Fingerprint()) != 16 {
		t.Fatalf("fingerprint length %d", len(s.Identity.Fingerprint()))
	}
}

func TestRegistryRegisterAndLookup(t *testing.T) {
	r := NewRegistry()
	a := newTestSigner(t, "org1", "a", RoleMember)
	b := newTestSigner(t, "org2", "b", RoleAdmin)
	if err := r.Register(a.Identity); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(b.Identity); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(a.Identity); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	got, ok := r.Lookup("org1/a")
	if !ok || got.Name != "a" {
		t.Fatal("lookup failed")
	}
	if _, ok := r.Lookup("org9/zz"); ok {
		t.Fatal("phantom lookup")
	}
	if r.Len() != 2 {
		t.Fatalf("Len = %d", r.Len())
	}
	orgs := r.Orgs()
	if len(orgs) != 2 || orgs[0] != "org1" || orgs[1] != "org2" {
		t.Fatalf("orgs = %v", orgs)
	}
	if members := r.Members("org1"); len(members) != 1 || members[0] != "org1/a" {
		t.Fatalf("members = %v", members)
	}
}

func endorse(t *testing.T, s *Signer, digest []byte) Endorsement {
	t.Helper()
	return Endorsement{Endorser: s.Identity, Digest: digest, Signature: s.Sign(digest)}
}

func TestQuorumPolicy(t *testing.T) {
	digest := []byte("result-digest")
	var signers []*Signer
	for i := 0; i < 4; i++ {
		signers = append(signers, newTestSigner(t, "org", string(rune('a'+i)), RoleMember))
	}
	pol := TwoThirds(4) // threshold 3
	if pol.Threshold != 3 {
		t.Fatalf("TwoThirds(4).Threshold = %d", pol.Threshold)
	}

	var ends []Endorsement
	for i := 0; i < 3; i++ {
		ends = append(ends, endorse(t, signers[i], digest))
	}
	if err := pol.Evaluate(digest, ends); err != nil {
		t.Fatalf("3/4 endorsements should satisfy: %v", err)
	}
	if err := pol.Evaluate(digest, ends[:2]); err == nil {
		t.Fatal("2/4 endorsements must not satisfy")
	}
}

func TestQuorumPolicyIgnoresDuplicatesAndBadSigs(t *testing.T) {
	digest := []byte("d")
	s := newTestSigner(t, "org", "solo", RoleMember)
	e := endorse(t, s, digest)
	pol := QuorumPolicy{Threshold: 2, Total: 4}
	// Same endorser twice counts once.
	if err := pol.Evaluate(digest, []Endorsement{e, e}); err == nil {
		t.Fatal("duplicate endorser satisfied quorum")
	}
	// A forged signature never counts.
	forged := Endorsement{Endorser: s.Identity, Digest: digest, Signature: make([]byte, 64)}
	if err := pol.Evaluate(digest, []Endorsement{e, forged}); err == nil {
		t.Fatal("forged endorsement satisfied quorum")
	}
	// A wrong-digest endorsement never counts.
	wrong := endorse(t, s, []byte("other"))
	if err := pol.Evaluate(digest, []Endorsement{e, wrong}); err == nil {
		t.Fatal("wrong-digest endorsement satisfied quorum")
	}
}

func TestTwoThirdsThresholds(t *testing.T) {
	cases := []struct{ n, want int }{{1, 1}, {2, 2}, {3, 2}, {4, 3}, {6, 4}, {7, 5}, {9, 6}, {10, 7}}
	for _, c := range cases {
		if got := TwoThirds(c.n).Threshold; got != c.want {
			t.Errorf("TwoThirds(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestOrgCoveragePolicy(t *testing.T) {
	digest := []byte("d")
	a1 := newTestSigner(t, "orgA", "1", RoleMember)
	a2 := newTestSigner(t, "orgA", "2", RoleMember)
	b1 := newTestSigner(t, "orgB", "1", RoleMember)
	pol := OrgCoveragePolicy{Threshold: 2, MinOrgs: 2}
	sameOrg := []Endorsement{endorse(t, a1, digest), endorse(t, a2, digest)}
	if err := pol.Evaluate(digest, sameOrg); err == nil {
		t.Fatal("single-org endorsements satisfied a 2-org policy")
	}
	crossOrg := []Endorsement{endorse(t, a1, digest), endorse(t, b1, digest)}
	if err := pol.Evaluate(digest, crossOrg); err != nil {
		t.Fatalf("cross-org endorsements rejected: %v", err)
	}
}

func TestAnyValidPolicy(t *testing.T) {
	digest := []byte("d")
	s := newTestSigner(t, "org", "x", RoleMember)
	if err := (AnyValid{}).Evaluate(digest, []Endorsement{endorse(t, s, digest)}); err != nil {
		t.Fatal(err)
	}
	if err := (AnyValid{}).Evaluate(digest, nil); err == nil {
		t.Fatal("empty endorsements satisfied AnyValid")
	}
}

func TestPolicyDescribe(t *testing.T) {
	for _, p := range []Policy{TwoThirds(4), OrgCoveragePolicy{Threshold: 2, MinOrgs: 2}, AnyValid{}} {
		if p.Describe() == "" {
			t.Fatalf("%T has empty description", p)
		}
	}
}
