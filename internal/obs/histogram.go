package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// DefBuckets is the default latency bucket layout (seconds): 100µs — 10s,
// tuned to the pipeline's observed range (sub-millisecond endorsement,
// tens-of-milliseconds commits, second-scale commit waits under load).
var DefBuckets = []float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
	0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// Histogram is a fixed-bucket latency histogram safe for concurrent
// observation: one atomic add per bucket hit plus sum/count, no locks, no
// allocation. Bucket counts are per-bucket (not cumulative); the Prometheus
// writer accumulates at scrape time.
type Histogram struct {
	bounds   []float64 // ascending upper bounds, seconds
	counts   []atomic.Int64
	sumNanos atomic.Int64
	count    atomic.Int64
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// Observe records one latency sample.
func (h *Histogram) Observe(d time.Duration) {
	s := d.Seconds()
	i := 0
	for i < len(h.bounds) && s > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.sumNanos.Add(int64(d))
	h.count.Add(1)
}

// Count returns the number of samples observed.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the total of all observed samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNanos.Load()) }

// Quantile estimates the q-quantile (0..1) in seconds by linear
// interpolation within the owning bucket — the same estimate
// histogram_quantile() would compute from the exported buckets. It returns
// 0 with no samples; samples beyond the last bound clamp to it.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	if target < 1 {
		target = 1
	}
	cum := 0.0
	for i := range h.counts {
		n := float64(h.counts[i].Load())
		if n == 0 {
			continue
		}
		if cum+n >= target {
			if i >= len(h.bounds) {
				return h.bounds[len(h.bounds)-1]
			}
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := h.bounds[i]
			frac := (target - cum) / n
			return lo + (hi-lo)*math.Min(1, math.Max(0, frac))
		}
		cum += n
	}
	return h.bounds[len(h.bounds)-1]
}
