package obs

import (
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"
)

// NewTraceID mints a transaction trace ID at submission time: 8 random
// bytes, hex-encoded. It is carried in the tx payload across every
// transport/RPC hop so one submission can be followed through endorse →
// order → consensus → validate → commit on any node it touches. Trace IDs
// are deliberately outside the signed byte ranges (Proposal.SigningBytes,
// Transaction.SigningBytes), so tracing never perturbs signatures or
// replica byte-identity.
func NewTraceID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand failing is unrecoverable elsewhere in the stack too;
		// an empty trace just means this tx goes untraced.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// TraceRecord is one slow transaction retained in the ring: the trace ID,
// where it committed, and the stage timings measured at the committing
// peer.
type TraceRecord struct {
	Trace    string        `json:"trace"`
	TxID     string        `json:"tx_id"`
	Channel  string        `json:"channel"`
	Block    uint64        `json:"block"`
	E2E      time.Duration `json:"e2e_ns"`
	Validate time.Duration `json:"validate_ns"`
	Commit   time.Duration `json:"commit_ns"`
}

// TraceRing is a bounded in-memory ring of recent slow traces: commits
// whose end-to-end latency (submission timestamp → commit) exceeded the
// threshold. It answers "which transactions were slow, and where did the
// time go" from /statusz without any external tracing backend.
type TraceRing struct {
	mu        sync.Mutex
	threshold time.Duration
	buf       []TraceRecord
	next      int
	full      bool
}

// NewTraceRing creates a ring holding up to size records of transactions
// slower than threshold end to end. size <= 0 defaults to 64; threshold
// <= 0 records every traced commit.
func NewTraceRing(size int, threshold time.Duration) *TraceRing {
	if size <= 0 {
		size = 64
	}
	return &TraceRing{threshold: threshold, buf: make([]TraceRecord, size)}
}

// Observe offers one committed transaction to the ring; it is retained
// only when its end-to-end latency is at or above the threshold.
func (tr *TraceRing) Observe(rec TraceRecord) {
	if tr == nil || rec.E2E < tr.threshold {
		return
	}
	tr.mu.Lock()
	tr.buf[tr.next] = rec
	tr.next++
	if tr.next == len(tr.buf) {
		tr.next = 0
		tr.full = true
	}
	tr.mu.Unlock()
}

// Snapshot returns the retained traces, oldest first.
func (tr *TraceRing) Snapshot() []TraceRecord {
	if tr == nil {
		return nil
	}
	tr.mu.Lock()
	defer tr.mu.Unlock()
	var out []TraceRecord
	if tr.full {
		out = append(out, tr.buf[tr.next:]...)
	}
	out = append(out, tr.buf[:tr.next]...)
	return out
}
