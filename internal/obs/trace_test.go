package obs

import (
	"testing"
	"time"
)

func TestNewTraceID(t *testing.T) {
	a, b := NewTraceID(), NewTraceID()
	if len(a) != 16 || len(b) != 16 {
		t.Fatalf("trace IDs %q/%q, want 16 hex chars", a, b)
	}
	if a == b {
		t.Fatalf("two trace IDs collided: %q", a)
	}
}

func TestTraceRingThresholdAndWrap(t *testing.T) {
	ring := NewTraceRing(4, 10*time.Millisecond)
	ring.Observe(TraceRecord{Trace: "fast", E2E: time.Millisecond}) // below threshold: dropped
	for i := 0; i < 6; i++ {
		ring.Observe(TraceRecord{Trace: string(rune('a' + i)), E2E: time.Second})
	}
	got := ring.Snapshot()
	if len(got) != 4 {
		t.Fatalf("ring holds %d records, want 4", len(got))
	}
	// Oldest first, the two earliest slow records evicted by the wrap.
	want := []string{"c", "d", "e", "f"}
	for i, rec := range got {
		if rec.Trace != want[i] {
			t.Fatalf("ring[%d] = %q, want %q (full: %+v)", i, rec.Trace, want[i], got)
		}
	}
}

func TestTraceRingNilSafe(t *testing.T) {
	var ring *TraceRing
	ring.Observe(TraceRecord{Trace: "x", E2E: time.Second})
	if got := ring.Snapshot(); got != nil {
		t.Fatalf("nil ring snapshot = %+v", got)
	}
}
