package obs

import (
	"bytes"
	"testing"
	"time"
)

// TestWritePrometheusGolden pins the exposition format byte for byte:
// HELP/TYPE headers, sorted families, sorted series, cumulative buckets
// with +Inf, _sum and _count. Scrapers parse this; the golden keeps the
// format stable.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "Things counted.", L("peer", "p1")).Add(3)
	reg.Counter("b_total", "Things counted.", L("peer", "p0")).Add(7)
	reg.CounterFunc("c_fn_total", "Sampled counter.", func() int64 { return 42 })
	reg.GaugeFunc("a_gauge", `Height with "quotes" and \slash.`, func() float64 { return 12.5 })
	h := reg.Histogram("d_seconds", "Latency.", []float64{0.001, 0.01, 0.1}, L("stage", "commit"))
	h.Observe(500 * time.Microsecond) // le=0.001
	h.Observe(5 * time.Millisecond)   // le=0.01
	h.Observe(5 * time.Millisecond)   // le=0.01
	h.Observe(2 * time.Second)        // +Inf

	const want = `# HELP a_gauge Height with "quotes" and \\slash.
# TYPE a_gauge gauge
a_gauge 12.5
# HELP b_total Things counted.
# TYPE b_total counter
b_total{peer="p0"} 7
b_total{peer="p1"} 3
# HELP c_fn_total Sampled counter.
# TYPE c_fn_total counter
c_fn_total 42
# HELP d_seconds Latency.
# TYPE d_seconds histogram
d_seconds_bucket{stage="commit",le="0.001"} 1
d_seconds_bucket{stage="commit",le="0.01"} 3
d_seconds_bucket{stage="commit",le="0.1"} 3
d_seconds_bucket{stage="commit",le="+Inf"} 4
d_seconds_sum{stage="commit"} 2.0105
d_seconds_count{stage="commit"} 4
`
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != want {
		t.Fatalf("exposition mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
