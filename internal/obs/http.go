package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// AdminServer is the per-process admin/debug HTTP surface: /metrics
// (Prometheus text exposition), /healthz (200 or 503 + JSON detail),
// /statusz (free-form JSON snapshot) and /debug/pprof. It is off by
// default and binds only when a daemon passes -admin.
type AdminServer struct {
	ln  net.Listener
	srv *http.Server
}

// ServeAdmin binds addr and serves the admin surface in a background
// goroutine. reg, health and statusz may each be nil — the corresponding
// endpoint degrades (empty exposition / always-healthy / empty object)
// rather than 404ing, so scrapers can be pointed at any role.
func ServeAdmin(addr string, reg *Registry, health *Health, statusz func() any) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = reg.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		st := health.Check()
		w.Header().Set("Content-Type", "application/json")
		if !st.Healthy {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, _ *http.Request) {
		var body any = struct{}{}
		if statusz != nil {
			body = statusz()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(body)
	})
	// pprof on the same listener closes the live-profiling gap: the
	// benchharness -cpuprofile/-memprofile flags cover offline runs, this
	// covers a daemon under real traffic (go tool pprof .../debug/pprof/...).
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)

	srv := &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	a := &AdminServer{ln: ln, srv: srv}
	go func() { _ = srv.Serve(ln) }()
	return a, nil
}

// Addr returns the bound address (useful with ":0" in tests).
func (a *AdminServer) Addr() string {
	if a == nil {
		return ""
	}
	return a.ln.Addr().String()
}

// Close stops the listener and open connections.
func (a *AdminServer) Close() error {
	if a == nil {
		return nil
	}
	return a.srv.Close()
}
