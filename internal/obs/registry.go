// Package obs is the runtime observability layer: a process-wide metrics
// registry (named, label-capable counters, gauges and low-overhead bucketed
// latency histograms), transaction-lifecycle tracing, per-channel health
// probes, and the admin HTTP surface (/metrics, /healthz, /statusz, pprof)
// every daemon can expose. It replaces the Grafana / Hyperledger Explorer
// dashboards of the paper's testbed with per-node introspection: in a
// decentralized deployment each process answers for itself.
//
// Hot-path discipline: instruments are plain atomics (the registry mutex is
// taken only at registration and scrape time), and every Registry method is
// nil-receiver safe — a nil *Registry hands back dangling but fully usable
// instruments, so instrumented code never branches on "is observability on".
package obs

import (
	"sort"
	"strings"
	"sync"

	"socialchain/internal/metrics"
)

// Label is one key=value dimension on a metric series.
type Label struct {
	Key   string
	Value string
}

// L is shorthand for constructing a Label.
func L(key, value string) Label { return Label{Key: key, Value: value} }

type metricType int

const (
	counterType metricType = iota
	gaugeType
	histogramType
)

func (t metricType) String() string {
	switch t {
	case counterType:
		return "counter"
	case gaugeType:
		return "gauge"
	default:
		return "histogram"
	}
}

// series is one labeled instance of a family. Exactly one of the value
// fields is set, matching the family's type.
type series struct {
	labels    []Label
	counter   *metrics.Counter
	counterFn func() int64
	gaugeFn   func() float64
	hist      *Histogram
}

// family groups every series sharing one metric name.
type family struct {
	name    string
	help    string
	typ     metricType
	buckets []float64 // histogram families only; first registration wins
	series  map[string]*series
}

// registryCore is the shared store behind every scoped Registry view.
type registryCore struct {
	mu       sync.Mutex
	families map[string]*family
}

// Registry is a handle on a metric store, optionally scoped with a fixed
// label set (see With). The zero of usefulness is nil: every method on a
// nil Registry returns a working, unregistered instrument, so callers
// instrument unconditionally and pay only the atomic increment.
type Registry struct {
	core  *registryCore
	scope []Label
}

// NewRegistry creates an empty metric store.
func NewRegistry() *Registry {
	return &Registry{core: &registryCore{families: make(map[string]*family)}}
}

// With returns a view of the same store that stamps the given labels onto
// every instrument registered through it — how a node scopes one shared
// registry per channel or per peer without the instrumented packages
// knowing the label vocabulary. With on a nil Registry is nil.
func (r *Registry) With(labels ...Label) *Registry {
	if r == nil {
		return nil
	}
	scope := make([]Label, 0, len(r.scope)+len(labels))
	scope = append(scope, r.scope...)
	scope = append(scope, labels...)
	return &Registry{core: r.core, scope: scope}
}

func (r *Registry) merged(labels []Label) []Label {
	out := make([]Label, 0, len(r.scope)+len(labels))
	out = append(out, r.scope...)
	out = append(out, labels...)
	sort.SliceStable(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// labelKey renders a sorted label set into the map key for its series.
func labelKey(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
	}
	return b.String()
}

// getOrCreate returns the series for (name, labels), creating family and
// series as needed. A name reused with a different type yields nil and the
// caller hands back a dangling instrument instead of corrupting the family.
func (r *Registry) getOrCreate(name, help string, typ metricType, buckets []float64, labels []Label) *series {
	merged := r.merged(labels)
	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	f, ok := r.core.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, buckets: buckets, series: make(map[string]*series)}
		r.core.families[name] = f
	}
	if f.typ != typ {
		return nil
	}
	key := labelKey(merged)
	s, ok := f.series[key]
	if !ok {
		s = &series{labels: merged}
		switch typ {
		case counterType:
			s.counter = new(metrics.Counter)
		case histogramType:
			s.hist = newHistogram(f.buckets)
		}
		f.series[key] = s
	}
	return s
}

// Counter registers (or fetches) a named counter. The returned
// *metrics.Counter is the same atomic the rest of the codebase already
// uses, now scrapeable — bump it with Inc/Add exactly as before.
func (r *Registry) Counter(name, help string, labels ...Label) *metrics.Counter {
	if r == nil {
		return new(metrics.Counter)
	}
	s := r.getOrCreate(name, help, counterType, nil, labels)
	if s == nil {
		return new(metrics.Counter)
	}
	return s.counter
}

// CounterFunc registers a counter whose value is read from fn at scrape
// time — how pre-existing ad-hoc counters (transport frame/byte counters,
// cache hits) join the registry without moving.
func (r *Registry) CounterFunc(name, help string, fn func() int64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	if s := r.getOrCreate(name, help, counterType, nil, labels); s != nil {
		s.counterFn = fn
		s.counter = nil
	}
}

// GaugeFunc registers a gauge sampled from fn at scrape time (heights,
// queue depths, hit rates).
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...Label) {
	if r == nil || fn == nil {
		return
	}
	if s := r.getOrCreate(name, help, gaugeType, nil, labels); s != nil {
		s.gaugeFn = fn
	}
}

// Histogram registers (or fetches) a bucketed latency histogram. A nil
// buckets slice uses DefBuckets. The first registration of a family fixes
// its bucket layout; later series share it.
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...Label) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	if r == nil {
		return newHistogram(buckets)
	}
	s := r.getOrCreate(name, help, histogramType, buckets, labels)
	if s == nil {
		return newHistogram(buckets)
	}
	return s.hist
}

// snapshot returns families sorted by name with series sorted by label
// key, for rendering. Values are read live (atomics / sample funcs).
func (r *Registry) snapshot() []*family {
	if r == nil {
		return nil
	}
	r.core.mu.Lock()
	defer r.core.mu.Unlock()
	out := make([]*family, 0, len(r.core.families))
	for _, f := range r.core.families {
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].name < out[j].name })
	return out
}
