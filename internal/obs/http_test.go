package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body), resp.Header
}

// TestAdminSurface exercises the full endpoint contract over a real
// listener: /metrics serves the exposition with the Prometheus content
// type, /healthz flips 200 -> 503 -> 200 as the injected probes stall and
// recover, /statusz serves the callback's JSON, and pprof answers.
func TestAdminSurface(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total", "Requests.", L("peer", "p0")).Add(9)

	clock := newFakeClock()
	var height uint64 = 3
	backlog := 0
	health := NewHealth(5*time.Second, clock.now)
	health.Register("social", Probe{
		Height:  func() uint64 { return height },
		Backlog: func() int { return backlog },
	})

	srv, err := ServeAdmin("127.0.0.1:0", reg, health, func() any {
		return map[string]any{"role": "peer", "height": height}
	})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()

	code, body, hdr := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	if ct := hdr.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("/metrics content type %q", ct)
	}
	if !strings.Contains(body, `requests_total{peer="p0"} 9`) {
		t.Fatalf("/metrics missing series:\n%s", body)
	}

	code, body, _ = get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("healthy /healthz status %d: %s", code, body)
	}

	// Stall consensus: backlog with no height advance past the window.
	backlog = 4
	health.Check() // observe the backlogged state at t0
	clock.advance(6 * time.Second)
	code, body, _ = get(t, base+"/healthz")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("stalled /healthz status %d, want 503: %s", code, body)
	}
	var report HealthStatus
	if err := json.Unmarshal([]byte(body), &report); err != nil {
		t.Fatalf("/healthz body not JSON: %v\n%s", err, body)
	}
	if report.Healthy || len(report.Channels) != 1 || report.Channels[0].Reason == "" {
		t.Fatalf("stalled report = %+v", report)
	}

	// Height advances: back to 200.
	height = 4
	code, _, _ = get(t, base+"/healthz")
	if code != http.StatusOK {
		t.Fatalf("recovered /healthz status %d", code)
	}

	code, body, _ = get(t, base+"/statusz")
	if code != http.StatusOK {
		t.Fatalf("/statusz status %d", code)
	}
	var status map[string]any
	if err := json.Unmarshal([]byte(body), &status); err != nil {
		t.Fatalf("/statusz body not JSON: %v\n%s", err, body)
	}
	if status["role"] != "peer" {
		t.Fatalf("/statusz = %v", status)
	}

	code, _, _ = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK {
		t.Fatalf("/debug/pprof/cmdline status %d", code)
	}
}

// TestAdminSurfaceNilParts: every wiring may be absent and the endpoints
// degrade instead of 404ing.
func TestAdminSurfaceNilParts(t *testing.T) {
	srv, err := ServeAdmin("127.0.0.1:0", nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + srv.Addr()
	if code, body, _ := get(t, base+"/metrics"); code != http.StatusOK || body != "" {
		t.Fatalf("/metrics on nil registry: %d %q", code, body)
	}
	if code, _, _ := get(t, base+"/healthz"); code != http.StatusOK {
		t.Fatalf("/healthz on nil health: %d", code)
	}
	code, body, _ := get(t, base+"/statusz")
	if code != http.StatusOK || !json.Valid([]byte(body)) {
		t.Fatalf("/statusz on nil fn: %d %q", code, body)
	}
}

func TestAdminServerNilSafe(t *testing.T) {
	var srv *AdminServer
	if srv.Addr() != "" {
		t.Fatal("nil AdminServer Addr should be empty")
	}
	if err := srv.Close(); err != nil {
		t.Fatalf("nil AdminServer Close: %v", err)
	}
}
