package obs

import (
	"testing"
	"time"
)

// fakeClock is an injectable clock for driving the stall rule.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1000, 0)} }
func channel(st HealthStatus, name string) ChannelStatus {
	for _, ch := range st.Channels {
		if ch.Channel == name {
			return ch
		}
	}
	return ChannelStatus{}
}

// TestHealthStallRule drives the edge-triggered stall detector: a channel
// with backlog but no height advance flips unhealthy after stallAfter, and
// a height advance resets the clock.
func TestHealthStallRule(t *testing.T) {
	clock := newFakeClock()
	var height uint64 = 5
	backlog := 0
	h := NewHealth(5*time.Second, clock.now)
	h.Register("ch0", Probe{
		Height:  func() uint64 { return height },
		Backlog: func() int { return backlog },
	})

	if st := h.Check(); !st.Healthy {
		t.Fatalf("fresh channel unhealthy: %+v", st)
	}

	// Backlog appears but the clock has not run out: still healthy.
	backlog = 3
	clock.advance(4 * time.Second)
	if st := h.Check(); !st.Healthy {
		t.Fatalf("healthy window violated: %+v", st)
	}

	// Past stallAfter with no height advance: unhealthy, with the reason.
	clock.advance(2 * time.Second)
	st := h.Check()
	if st.Healthy {
		t.Fatalf("stalled channel reported healthy: %+v", st)
	}
	if got := channel(st, "ch0").Reason; got != "consensus stalled: backlog with no height advance" {
		t.Fatalf("stall reason = %q", got)
	}

	// Height advances: the stall clock resets and health recovers even
	// though backlog is still draining.
	height = 6
	if st := h.Check(); !st.Healthy {
		t.Fatalf("height advance did not recover health: %+v", st)
	}

	// Backlog drains entirely: no stall regardless of elapsed time.
	backlog = 0
	clock.advance(time.Hour)
	if st := h.Check(); !st.Healthy {
		t.Fatalf("idle channel reported unhealthy: %+v", st)
	}
}

// TestHealthPeerFloor: fewer connected peers than MinPeers is unhealthy.
func TestHealthPeerFloor(t *testing.T) {
	clock := newFakeClock()
	peers := 3
	h := NewHealth(0, clock.now)
	h.Register("ch0", Probe{
		Peers:    func() int { return peers },
		MinPeers: 2,
	})
	if st := h.Check(); !st.Healthy {
		t.Fatalf("connected channel unhealthy: %+v", st)
	}
	peers = 1
	st := h.Check()
	if st.Healthy {
		t.Fatalf("isolated channel healthy: %+v", st)
	}
	if got := channel(st, "ch0").Reason; got != "transport: too few connected peers" {
		t.Fatalf("peer-floor reason = %q", got)
	}
	peers = 5
	if st := h.Check(); !st.Healthy {
		t.Fatalf("reconnected channel still unhealthy: %+v", st)
	}
}

// TestHealthNilAggregatorIsHealthy: a role with no health wiring always
// answers healthy instead of panicking.
func TestHealthNilAggregatorIsHealthy(t *testing.T) {
	var h *Health
	h.Register("ch0", Probe{})
	if st := h.Check(); !st.Healthy {
		t.Fatal("nil Health should report healthy")
	}
}
