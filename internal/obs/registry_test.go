package obs

import (
	"bytes"
	"io"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestRegistryConcurrency hammers counters and histograms from many
// goroutines while a scraper renders the exposition in a loop — the
// real shape of a node under load being polled. Run under -race this is
// the registry's thread-safety proof; the exact final counts prove no
// increment was lost.
func TestRegistryConcurrency(t *testing.T) {
	reg := NewRegistry()
	const (
		workers = 8
		perW    = 2000
	)
	ctr := reg.Counter("ops_total", "ops")
	hist := reg.Histogram("op_seconds", "op latency", nil)
	stop := make(chan struct{})
	var scrapeWG sync.WaitGroup
	scrapeWG.Add(1)
	go func() {
		defer scrapeWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := reg.WritePrometheus(io.Discard); err != nil {
					t.Errorf("scrape: %v", err)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Mix direct instrument use with registration-path fetches and
			// label-scoped views, so the family map is read and written
			// concurrently with scrapes.
			scoped := reg.With(L("worker", "w"))
			for i := 0; i < perW; i++ {
				ctr.Inc()
				hist.Observe(time.Duration(i) * time.Microsecond)
				reg.Counter("ops_total", "ops").Inc()
				scoped.Counter("scoped_total", "scoped ops").Inc()
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	scrapeWG.Wait()

	if got := ctr.Load(); got != workers*perW*2 {
		t.Fatalf("ops_total = %d, want %d", got, workers*perW*2)
	}
	if got := hist.Count(); got != workers*perW {
		t.Fatalf("op_seconds count = %d, want %d", got, workers*perW)
	}
	if got := reg.With(L("worker", "w")).Counter("scoped_total", "").Load(); got != workers*perW {
		t.Fatalf("scoped_total = %d, want %d", got, workers*perW)
	}
}

// TestNilRegistryInstrumentsAreUsable is the hot-path contract: a nil
// registry hands back dangling but working instruments, so instrumented
// code never branches on observability being enabled.
func TestNilRegistryInstrumentsAreUsable(t *testing.T) {
	var reg *Registry
	if reg.With(L("a", "b")) != nil {
		t.Fatal("With on nil registry should stay nil")
	}
	c := reg.Counter("c", "")
	c.Inc()
	if c.Load() != 1 {
		t.Fatal("dangling counter did not count")
	}
	h := reg.Histogram("h", "", nil)
	h.Observe(time.Millisecond)
	if h.Count() != 1 {
		t.Fatal("dangling histogram did not observe")
	}
	reg.CounterFunc("cf", "", func() int64 { return 0 })
	reg.GaugeFunc("gf", "", func() float64 { return 0 })
	if err := reg.WritePrometheus(io.Discard); err != nil {
		t.Fatalf("WritePrometheus on nil registry: %v", err)
	}
}

// TestRegistryRefetchReturnsSameInstrument: same name + labels = same
// atomic, which is how trafficgen reads gateway histograms back out.
func TestRegistryRefetchReturnsSameInstrument(t *testing.T) {
	reg := NewRegistry()
	a := reg.Counter("hits", "h", L("peer", "p0"))
	b := reg.Counter("hits", "h", L("peer", "p0"))
	if a != b {
		t.Fatal("re-fetching a counter returned a different instrument")
	}
	h1 := reg.Histogram("lat", "l", nil, L("stage", "endorse"))
	h2 := reg.With().Histogram("lat", "", nil, L("stage", "endorse"))
	if h1 != h2 {
		t.Fatal("re-fetching a histogram returned a different instrument")
	}
	if other := reg.Counter("hits", "h", L("peer", "p1")); other == a {
		t.Fatal("different label set shares an instrument")
	}
}

// TestRegistryTypeMismatchDangles: reusing a family name with another
// type must not corrupt the family — the caller gets a dangling
// instrument and the original series keeps rendering.
func TestRegistryTypeMismatchDangles(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("versatile", "counter first").Inc()
	h := reg.Histogram("versatile", "now a histogram?", nil)
	h.Observe(time.Second) // must not panic or leak into the counter family
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "# TYPE versatile counter") {
		t.Fatalf("counter family lost after type mismatch:\n%s", out)
	}
	if strings.Contains(out, "versatile_bucket") {
		t.Fatalf("histogram leaked into a counter family:\n%s", out)
	}
}
