package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered family in the Prometheus text
// exposition format (version 0.0.4): # HELP / # TYPE headers, one line per
// series, histogram buckets cumulative with an explicit +Inf bucket plus
// _sum and _count. Families print sorted by name, series sorted by label
// set, so the output is deterministic for golden tests.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, f := range r.snapshot() {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.typ); err != nil {
			return err
		}
		keys := make([]string, 0, len(f.series))
		for k := range f.series {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			if err := writeSeries(w, f, f.series[k]); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.typ {
	case counterType:
		v := int64(0)
		if s.counterFn != nil {
			v = s.counterFn()
		} else if s.counter != nil {
			v = s.counter.Load()
		}
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, labelString(s.labels, "", ""), v)
		return err
	case gaugeType:
		v := 0.0
		if s.gaugeFn != nil {
			v = s.gaugeFn()
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, labelString(s.labels, "", ""), formatFloat(v))
		return err
	default:
		h := s.hist
		cum := int64(0)
		for i, bound := range h.bounds {
			cum += h.counts[i].Load()
			le := formatFloat(bound)
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(s.labels, "le", le), cum); err != nil {
				return err
			}
		}
		cum += h.counts[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, labelString(s.labels, "le", "+Inf"), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, labelString(s.labels, "", ""), formatFloat(h.Sum().Seconds())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, labelString(s.labels, "", ""), h.Count())
		return err
	}
}

// labelString renders {k="v",...}; extraKey/extraVal append a final label
// (the histogram le). Empty label sets render as nothing.
func labelString(labels []Label, extraKey, extraVal string) string {
	if len(labels) == 0 && extraKey == "" {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteString(`"`)
	}
	if extraKey != "" {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		b.WriteString(extraKey)
		b.WriteString(`="`)
		b.WriteString(extraVal)
		b.WriteString(`"`)
	}
	b.WriteByte('}')
	return b.String()
}

func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeLabel(s string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(s)
}

func escapeHelp(s string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(s)
}
