package obs

import (
	"sort"
	"sync"
	"time"
)

// Probe is one channel's liveness instrumentation: sampled, not pushed, so
// a wedged channel cannot wedge its own health report.
type Probe struct {
	// Height samples the channel's chain height.
	Height func() uint64
	// Backlog samples work awaiting consensus/commit (pending consensus
	// requests plus undelivered executor items). A non-zero backlog with
	// no height advance for StallAfter marks the channel unhealthy.
	Backlog func() int
	// Peers samples connected transport peers (nil when the process has
	// no wire transport, e.g. the in-process demo).
	Peers func() int
	// MinPeers is the connectivity floor: fewer connected peers than this
	// marks the channel unhealthy. Zero disables the check.
	MinPeers int
}

// ChannelStatus is one channel's verdict in a health report.
type ChannelStatus struct {
	Channel string `json:"channel"`
	Healthy bool   `json:"healthy"`
	Reason  string `json:"reason,omitempty"`
	Height  uint64 `json:"height"`
	Backlog int    `json:"backlog"`
	Peers   int    `json:"peers_connected"`
}

// HealthStatus is the full /healthz report.
type HealthStatus struct {
	Healthy  bool            `json:"healthy"`
	Channels []ChannelStatus `json:"channels"`
}

// Health aggregates per-channel liveness probes into the /healthz verdict.
// The stall rule is edge-triggered on height: every Check that sees the
// height advance resets the channel's stall clock; a channel with work
// backed up (Backlog > 0) whose height has not advanced for StallAfter is
// unhealthy — exactly the "consensus executor wedged / quorum lost" state
// that is otherwise invisible until a client times out.
type Health struct {
	stallAfter time.Duration
	now        func() time.Time

	mu       sync.Mutex
	channels map[string]*channelHealth
}

type channelHealth struct {
	probe       Probe
	seen        bool
	lastHeight  uint64
	lastAdvance time.Time
}

// NewHealth creates a health aggregator. stallAfter <= 0 defaults to 5s;
// now == nil uses time.Now (tests inject a fake clock).
func NewHealth(stallAfter time.Duration, now func() time.Time) *Health {
	if stallAfter <= 0 {
		stallAfter = 5 * time.Second
	}
	if now == nil {
		now = time.Now
	}
	return &Health{stallAfter: stallAfter, now: now, channels: make(map[string]*channelHealth)}
}

// Register adds (or replaces) one channel's probe.
func (h *Health) Register(channel string, p Probe) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.channels[channel] = &channelHealth{probe: p}
	h.mu.Unlock()
}

// Check samples every probe and renders the verdict.
func (h *Health) Check() HealthStatus {
	if h == nil {
		return HealthStatus{Healthy: true}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	now := h.now()
	report := HealthStatus{Healthy: true}
	names := make([]string, 0, len(h.channels))
	for name := range h.channels {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ch := h.channels[name]
		st := ChannelStatus{Channel: name, Healthy: true}
		if ch.probe.Height != nil {
			st.Height = ch.probe.Height()
		}
		if !ch.seen || st.Height > ch.lastHeight {
			ch.seen = true
			ch.lastHeight = st.Height
			ch.lastAdvance = now
		}
		if ch.probe.Backlog != nil {
			st.Backlog = ch.probe.Backlog()
		}
		if st.Backlog > 0 && now.Sub(ch.lastAdvance) >= h.stallAfter {
			st.Healthy = false
			st.Reason = "consensus stalled: backlog with no height advance"
		}
		if ch.probe.Peers != nil {
			st.Peers = ch.probe.Peers()
			if st.Healthy && ch.probe.MinPeers > 0 && st.Peers < ch.probe.MinPeers {
				st.Healthy = false
				st.Reason = "transport: too few connected peers"
			}
		}
		if !st.Healthy {
			report.Healthy = false
		}
		report.Channels = append(report.Channels, st)
	}
	return report
}
