package detect

import (
	"encoding/json"
	"testing"
	"time"

	"socialchain/internal/metrics"
	"socialchain/internal/sim"
)

func staticFrame(rng *sim.RNG, size int) *Frame {
	return &Frame{
		ID:         "vid/frame-00001",
		VideoID:    "vid",
		CameraID:   "cam-1",
		Platform:   PlatformStatic,
		Encoding:   EncodingJPEG,
		Width:      1280,
		Height:     720,
		Data:       rng.Bytes(size),
		Timestamp:  time.Unix(1720000000, 0).UTC(),
		Location:   GeoPoint{Latitude: 12.97, Longitude: 77.59},
		LightLevel: 1,
	}
}

func droneFrame(rng *sim.RNG, size int) *Frame {
	f := staticFrame(rng, size)
	f.Platform = PlatformDrone
	f.CameraID = "drone-1"
	f.MotionBlur = 0.5
	f.Altitude = 80
	f.LightLevel = 0.8
	return f
}

func TestDetectProducesValidDetections(t *testing.T) {
	rng := sim.NewRNG(1)
	d := NewDetector(1)
	f := staticFrame(rng, 4096)
	dets := d.Detect(f)
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	for i, det := range dets {
		if det.Confidence < 0 || det.Confidence > 1 {
			t.Fatalf("detection %d confidence %f", i, det.Confidence)
		}
		if !det.BoundingBox.Valid(f.Width, f.Height) {
			t.Fatalf("detection %d bbox %+v invalid", i, det.BoundingBox)
		}
		if det.Label == "" || det.Color == "" {
			t.Fatalf("detection %d missing label/color", i)
		}
		if !det.Timestamp.Equal(f.Timestamp) {
			t.Fatalf("detection %d timestamp drifted", i)
		}
	}
}

func TestStaticConfidenceHigherAndTighter(t *testing.T) {
	// The core claim of Figure 3: static cameras yield higher, more stable
	// confidence scores than drones.
	rng := sim.NewRNG(2)
	d := NewDetector(2)
	staticStats := metrics.NewStats()
	droneStats := metrics.NewStats()
	for i := 0; i < 300; i++ {
		for _, det := range d.Detect(staticFrame(rng, 2048)) {
			staticStats.Add(det.Confidence)
		}
		for _, det := range d.Detect(droneFrame(rng, 2048)) {
			droneStats.Add(det.Confidence)
		}
	}
	if staticStats.Mean() <= droneStats.Mean() {
		t.Fatalf("static mean %.3f <= drone mean %.3f", staticStats.Mean(), droneStats.Mean())
	}
	if staticStats.Std() >= droneStats.Std() {
		t.Fatalf("static std %.3f >= drone std %.3f", staticStats.Std(), droneStats.Std())
	}
}

func TestBlurAndAltitudeReduceConfidence(t *testing.T) {
	rng := sim.NewRNG(3)
	dClear := NewDetector(7)
	dBlur := NewDetector(7) // same seed: identical base draws
	clear := droneFrame(rng, 1024)
	clear.MotionBlur = 0
	clear.Altitude = 10
	clear.LightLevel = 1
	blurry := droneFrame(sim.NewRNG(3), 1024)
	blurry.MotionBlur = 1
	blurry.Altitude = 150
	blurry.LightLevel = 0.2

	cClear := metrics.NewStats()
	cBlur := metrics.NewStats()
	for i := 0; i < 200; i++ {
		for _, det := range dClear.Detect(clear) {
			cClear.Add(det.Confidence)
		}
		for _, det := range dBlur.Detect(blurry) {
			cBlur.Add(det.Confidence)
		}
	}
	if cClear.Mean() <= cBlur.Mean() {
		t.Fatalf("clear mean %.3f <= degraded mean %.3f", cClear.Mean(), cBlur.Mean())
	}
}

func TestExtractMetadataRecord(t *testing.T) {
	rng := sim.NewRNG(4)
	d := NewDetector(4)
	f := staticFrame(rng, 8192)
	rec, dur := d.ExtractMetadata(f)
	if dur <= 0 {
		t.Fatal("extraction duration not measured")
	}
	if rec.FrameID != f.ID || rec.CameraID != f.CameraID || rec.Platform != "static" {
		t.Fatalf("record identity: %+v", rec)
	}
	if rec.SizeBytes != f.SizeBytes() {
		t.Fatalf("size %d != %d", rec.SizeBytes, f.SizeBytes())
	}
	if rec.DataHash != f.Hash() {
		t.Fatal("data hash mismatch")
	}
	if len(rec.DataHash) != 64 {
		t.Fatalf("hash length %d", len(rec.DataHash))
	}
	if len(rec.Detections) == 0 {
		t.Fatal("no detections in record")
	}
	// The record serialises to the Figure 2 schema.
	b, err := json.Marshal(rec.Detections[0])
	if err != nil {
		t.Fatal(err)
	}
	for _, field := range []string{"label", "confidence", "bounding_box", "timestamp", "color", "location"} {
		if !jsonHasField(b, field) {
			t.Fatalf("serialised detection lacks %q: %s", field, b)
		}
	}
}

func jsonHasField(b []byte, field string) bool {
	var m map[string]json.RawMessage
	if err := json.Unmarshal(b, &m); err != nil {
		return false
	}
	_, ok := m[field]
	return ok
}

func TestExtractionTimeGrowsWithSize(t *testing.T) {
	rng := sim.NewRNG(5)
	d := NewDetector(5)
	small := metrics.NewStats()
	large := metrics.NewStats()
	for i := 0; i < 30; i++ {
		_, dur := d.ExtractMetadata(staticFrame(rng, 1024))
		small.AddDuration(dur)
		_, dur = d.ExtractMetadata(staticFrame(rng, 1024*1024))
		large.AddDuration(dur)
	}
	if large.Mean() <= small.Mean() {
		t.Fatalf("1 MiB extraction (%.6fs) not slower than 1 KiB (%.6fs)", large.Mean(), small.Mean())
	}
}

func TestEncodingAffectsCost(t *testing.T) {
	if EncodingRaw.decodePasses() >= EncodingH264.decodePasses() {
		t.Fatal("encoding cost ordering broken")
	}
}

func TestFrameHashStable(t *testing.T) {
	rng := sim.NewRNG(6)
	f := staticFrame(rng, 128)
	if f.Hash() != f.Hash() {
		t.Fatal("hash unstable")
	}
	g := staticFrame(rng, 128)
	if f.Hash() == g.Hash() {
		t.Fatal("different payloads same hash")
	}
}

func TestBoundingBoxValid(t *testing.T) {
	cases := []struct {
		box  BoundingBox
		want bool
	}{
		{BoundingBox{0, 0, 10, 10}, true},
		{BoundingBox{-1, 0, 10, 10}, false},
		{BoundingBox{10, 10, 10, 20}, false},
		{BoundingBox{0, 0, 1281, 10}, false},
		{BoundingBox{755, 82, 1023, 506}, true}, // the paper's Figure 2 box
	}
	for i, c := range cases {
		if got := c.box.Valid(1280, 720); got != c.want {
			t.Errorf("case %d: Valid = %v", i, got)
		}
	}
}

func TestPrimaryLabel(t *testing.T) {
	rec := MetadataRecord{Detections: []Detection{
		{Label: "car", Confidence: 0.5},
		{Label: "truck", Confidence: 0.9},
		{Label: "bus", Confidence: 0.2},
	}}
	if rec.PrimaryLabel() != "truck" {
		t.Fatalf("primary = %q", rec.PrimaryLabel())
	}
	empty := MetadataRecord{}
	if empty.PrimaryLabel() != "" {
		t.Fatal("empty record has primary label")
	}
}

func TestPlatformString(t *testing.T) {
	if PlatformStatic.String() != "static" || PlatformDrone.String() != "drone" {
		t.Fatal("platform strings wrong")
	}
}

func TestFrameIDFor(t *testing.T) {
	if got := FrameIDFor("vid-1", 3); got != "vid-1/frame-00003" {
		t.Fatalf("frame id %q", got)
	}
}

func TestDetectorDeterministicPerSeed(t *testing.T) {
	f1 := staticFrame(sim.NewRNG(9), 512)
	f2 := staticFrame(sim.NewRNG(9), 512)
	d1 := NewDetector(99)
	d2 := NewDetector(99)
	a := d1.Detect(f1)
	b := d2.Detect(f2)
	if len(a) != len(b) {
		t.Fatalf("detection counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Label != b[i].Label || a[i].Confidence != b[i].Confidence {
			t.Fatalf("detection %d differs", i)
		}
	}
}
