// Package detect simulates the vision pipeline the paper runs ahead of the
// blockchain: video frames from static traffic cameras and drones, a
// YOLO-like object detector with platform-dependent confidence models, and
// metadata extraction producing exactly the record schema of the paper's
// Figure 2 (label, confidence, bounding box, timestamp, color, location).
//
// The detector is a deterministic synthetic stand-in for YOLO: Figure 3
// depends only on the confidence distributions of the two platforms, and
// Figure 4 only on extraction compute as a function of frame size, both of
// which this package reproduces with real (measured, not fabricated) work.
package detect

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"
)

// Platform distinguishes capture sources, the two series of Figure 3.
type Platform int

// Capture platforms.
const (
	PlatformStatic Platform = iota // fixed roadside camera
	PlatformDrone                  // aerial capture
)

// String implements fmt.Stringer.
func (p Platform) String() string {
	if p == PlatformDrone {
		return "drone"
	}
	return "static"
}

// Encoding labels the simulated on-disk format of a frame; extraction cost
// varies by encoding, one source of Figure 4's nonlinearity.
type Encoding string

// Simulated encodings with increasing decode cost.
const (
	EncodingRaw  Encoding = "raw"
	EncodingJPEG Encoding = "jpeg"
	EncodingPNG  Encoding = "png"
	EncodingH264 Encoding = "h264"
)

// decodePasses returns how many passes over the payload decoding costs.
func (e Encoding) decodePasses() int {
	switch e {
	case EncodingJPEG:
		return 2
	case EncodingPNG:
		return 3
	case EncodingH264:
		return 4
	default:
		return 1
	}
}

// GeoPoint is a WGS84 coordinate.
type GeoPoint struct {
	Latitude  float64 `json:"latitude"`
	Longitude float64 `json:"longitude"`
}

// Frame is one captured image (synthetic payload).
type Frame struct {
	ID       string   `json:"id"`
	VideoID  string   `json:"video_id"`
	CameraID string   `json:"camera_id"`
	Index    int      `json:"index"`
	Platform Platform `json:"platform"`
	Encoding Encoding `json:"encoding"`
	Width    int      `json:"width"`
	Height   int      `json:"height"`
	// Data is the simulated pixel payload; its length is the "file size"
	// axis of Figures 4-6.
	Data      []byte    `json:"-"`
	Timestamp time.Time `json:"timestamp"`
	Location  GeoPoint  `json:"location"`

	// Capture-condition factors; zero for static cameras.
	MotionBlur float64 `json:"motion_blur,omitempty"` // 0..1
	Altitude   float64 `json:"altitude,omitempty"`    // metres
	LightLevel float64 `json:"light_level,omitempty"` // 0..1, 1 = daylight
}

// SizeBytes returns the frame payload size.
func (f *Frame) SizeBytes() int { return len(f.Data) }

// Hash returns the SHA-256 of the frame payload, the integrity anchor
// stored on-chain and checked at retrieval.
func (f *Frame) Hash() string {
	sum := sha256.Sum256(f.Data)
	return hex.EncodeToString(sum[:])
}

// BoundingBox frames a detection in pixel coordinates, as in Figure 2.
type BoundingBox struct {
	X1 int `json:"x1"`
	Y1 int `json:"y1"`
	X2 int `json:"x2"`
	Y2 int `json:"y2"`
}

// Valid reports whether the box is well-formed and within a w x h frame.
func (b BoundingBox) Valid(w, h int) bool {
	return b.X1 >= 0 && b.Y1 >= 0 && b.X1 < b.X2 && b.Y1 < b.Y2 && b.X2 <= w && b.Y2 <= h
}

// Detection is one detected object, matching the paper's Figure 2 record.
type Detection struct {
	Label       string      `json:"label"`
	Confidence  float64     `json:"confidence"`
	BoundingBox BoundingBox `json:"bounding_box"`
	Timestamp   time.Time   `json:"timestamp"`
	Color       string      `json:"color"`
	Location    GeoPoint    `json:"location"`
}

// MetadataRecord is the unit stored on-chain alongside the payload CID: the
// extracted detections plus the provenance anchors (source, hash, size).
type MetadataRecord struct {
	FrameID     string      `json:"frame_id"`
	VideoID     string      `json:"video_id"`
	CameraID    string      `json:"camera_id"`
	Platform    string      `json:"platform"`
	Detections  []Detection `json:"detections"`
	CapturedAt  time.Time   `json:"captured_at"`
	ExtractedAt time.Time   `json:"extracted_at"`
	SizeBytes   int         `json:"size_bytes"`
	DataHash    string      `json:"data_hash"`
	Location    GeoPoint    `json:"location"`
}

// PrimaryLabel returns the label of the most confident detection, or "".
func (m *MetadataRecord) PrimaryLabel() string {
	best := ""
	conf := -1.0
	for _, d := range m.Detections {
		if d.Confidence > conf {
			conf = d.Confidence
			best = d.Label
		}
	}
	return best
}

// VehicleLabels is the detector's class list: the paper's cars, trucks and
// two-wheelers plus classes common in Bangalore traffic feeds.
var VehicleLabels = []string{"car", "truck", "bus", "two-wheeler", "auto-rickshaw", "bicycle", "pedestrian"}

// VehicleColors is the detector's colour vocabulary.
var VehicleColors = []string{"white", "black", "silver", "red", "blue", "yellow", "green", "grey"}

// FrameIDFor builds the canonical frame id.
func FrameIDFor(videoID string, index int) string {
	return fmt.Sprintf("%s/frame-%05d", videoID, index)
}
