package detect

import (
	"testing"

	"socialchain/internal/sim"
)

func BenchmarkDetectStatic(b *testing.B) {
	rng := sim.NewRNG(1)
	d := NewDetector(1)
	f := staticFrame(rng, 32*1024)
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(f)
	}
}

func BenchmarkDetectDrone(b *testing.B) {
	rng := sim.NewRNG(1)
	d := NewDetector(1)
	f := droneFrame(rng, 32*1024)
	b.SetBytes(int64(f.SizeBytes()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d.Detect(f)
	}
}
