package detect

import (
	"encoding/json"
	"time"

	"socialchain/internal/sim"
)

// ConfidenceModel parameterises the per-platform confidence distribution.
// Values follow the paper's observation: static cameras yield "higher and
// more stable confidence scores due to consistent capture conditions" while
// drone data shows "greater variability from motion blur, altitude changes,
// and environmental factors".
type ConfidenceModel struct {
	Mean   float64
	StdDev float64
	// BlurPenalty scales the confidence loss per unit of motion blur.
	BlurPenalty float64
	// AltitudePenalty is the loss per 100 m of altitude.
	AltitudePenalty float64
	// LowLightPenalty is the loss at LightLevel 0 (fades out by 1).
	LowLightPenalty float64
}

// DefaultStaticModel matches the tight static-camera distribution.
var DefaultStaticModel = ConfidenceModel{Mean: 0.82, StdDev: 0.06}

// DefaultDroneModel matches the wider, lower drone distribution.
var DefaultDroneModel = ConfidenceModel{
	Mean:            0.64,
	StdDev:          0.13,
	BlurPenalty:     0.25,
	AltitudePenalty: 0.04,
	LowLightPenalty: 0.15,
}

// Detector is the YOLO stand-in. It is deterministic for a given seed and
// frame sequence.
type Detector struct {
	rng    *sim.RNG
	static ConfidenceModel
	drone  ConfidenceModel
}

// NewDetector returns a detector with the default confidence models.
func NewDetector(seed int64) *Detector {
	return &Detector{rng: sim.NewRNG(seed), static: DefaultStaticModel, drone: DefaultDroneModel}
}

// NewDetectorWithModels returns a detector with explicit models.
func NewDetectorWithModels(seed int64, static, drone ConfidenceModel) *Detector {
	return &Detector{rng: sim.NewRNG(seed), static: static, drone: drone}
}

// objectCount derives how many objects a frame contains from its payload
// (content-dependent but deterministic).
func (d *Detector) objectCount(f *Frame) int {
	n := 1 + d.rng.Intn(5)
	if f.SizeBytes() > 64*1024 {
		n += d.rng.Intn(3) // busier scenes in larger frames
	}
	return n
}

// confidence draws one score for a frame under its platform model.
func (d *Detector) confidence(f *Frame) float64 {
	m := d.static
	if f.Platform == PlatformDrone {
		m = d.drone
	}
	c := d.rng.Normal(m.Mean, m.StdDev)
	c -= m.BlurPenalty * f.MotionBlur
	c -= m.AltitudePenalty * f.Altitude / 100
	c -= m.LowLightPenalty * (1 - f.LightLevel)
	if c < 0.05 {
		c = 0.05
	}
	if c > 0.99 {
		c = 0.99
	}
	return c
}

// Detect runs the simulated model over a frame and returns its detections.
// The compute cost scales with the payload size (the "inference" pass) so
// measured latencies behave like a real extractor.
func (d *Detector) Detect(f *Frame) []Detection {
	d.inferencePass(f)
	n := d.objectCount(f)
	dets := make([]Detection, 0, n)
	for i := 0; i < n; i++ {
		w := 40 + d.rng.Intn(max(1, f.Width/2))
		h := 40 + d.rng.Intn(max(1, f.Height/2))
		x1 := d.rng.Intn(max(1, f.Width-w))
		y1 := d.rng.Intn(max(1, f.Height-h))
		dets = append(dets, Detection{
			Label:       sim.Pick(d.rng, VehicleLabels),
			Confidence:  d.confidence(f),
			BoundingBox: BoundingBox{X1: x1, Y1: y1, X2: x1 + w, Y2: y1 + h},
			Timestamp:   f.Timestamp,
			Color:       sim.Pick(d.rng, VehicleColors),
			Location: GeoPoint{
				Latitude:  f.Location.Latitude + d.rng.Normal(0, 1e-5),
				Longitude: f.Location.Longitude + d.rng.Normal(0, 1e-5),
			},
		})
	}
	return dets
}

// inferencePass performs real work over the payload: one pass per decode
// stage of the frame's encoding, plus a fixed model-evaluation term. The
// checksum result feeds nothing; its purpose is honest, size-dependent
// compute for Figure 4.
func (d *Detector) inferencePass(f *Frame) uint64 {
	var acc uint64
	passes := f.Encoding.decodePasses()
	for p := 0; p < passes; p++ {
		for _, b := range f.Data {
			acc = acc*31 + uint64(b)
		}
	}
	// Fixed per-frame model cost (anchor compute independent of size).
	for i := 0; i < 4096; i++ {
		acc = acc*6364136223846793005 + 1442695040888963407
	}
	return acc
}

// ExtractMetadata decodes the frame, runs detection, hashes the payload and
// assembles the on-chain metadata record. It returns the record and the
// wall-clock extraction duration (the y-axis of Figure 4).
func (d *Detector) ExtractMetadata(f *Frame) (MetadataRecord, time.Duration) {
	start := time.Now()
	dets := d.Detect(f)
	rec := MetadataRecord{
		FrameID:     f.ID,
		VideoID:     f.VideoID,
		CameraID:    f.CameraID,
		Platform:    f.Platform.String(),
		Detections:  dets,
		CapturedAt:  f.Timestamp,
		ExtractedAt: time.Now(),
		SizeBytes:   f.SizeBytes(),
		DataHash:    f.Hash(),
		Location:    f.Location,
	}
	// Serialisation is part of extraction (the paper stores JSON metadata).
	if _, err := json.Marshal(rec); err != nil {
		panic("detect: metadata marshal: " + err.Error())
	}
	return rec, time.Since(start)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
