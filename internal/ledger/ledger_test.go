package ledger

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"socialchain/internal/msp"
	"socialchain/internal/statedb"
)

func testTx(t *testing.T, id string) Transaction {
	t.Helper()
	s, err := msp.NewSigner("org", "client", msp.RoleMember)
	if err != nil {
		t.Fatal(err)
	}
	tx := Transaction{
		ID:        id,
		ChannelID: "ch",
		Creator:   s.Identity,
		Payload:   TxPayload{Chaincode: "cc", Fn: "put", Args: [][]byte{[]byte("k"), []byte("v")}},
		RWSet: statedb.RWSet{
			Writes: []statedb.WriteItem{{Namespace: "cc", Key: "k", Value: []byte("v")}},
		},
		Timestamp: time.Now(),
	}
	tx.Signature = s.Sign(tx.SigningBytes())
	return tx
}

func chainOf(t *testing.T, nBlocks, txPerBlock int) *Ledger {
	t.Helper()
	l := New()
	seq := 0
	for b := 0; b < nBlocks; b++ {
		var txs []Transaction
		for i := 0; i < txPerBlock; i++ {
			txs = append(txs, testTx(t, fmt.Sprintf("tx-%d", seq)))
			seq++
		}
		blk := NewBlock(uint64(b), l.TipHash(), txs, time.Now())
		if err := l.Append(blk); err != nil {
			t.Fatalf("append block %d: %v", b, err)
		}
	}
	return l
}

func TestAppendAndHeight(t *testing.T) {
	l := chainOf(t, 3, 2)
	if l.Height() != 3 {
		t.Fatalf("height = %d", l.Height())
	}
	if err := l.VerifyChain(); err != nil {
		t.Fatal(err)
	}
}

func TestAppendRejectsWrongNumber(t *testing.T) {
	l := chainOf(t, 1, 1)
	blk := NewBlock(5, l.TipHash(), nil, time.Now())
	if err := l.Append(blk); err == nil {
		t.Fatal("wrong block number accepted")
	}
}

func TestAppendRejectsWrongPrevHash(t *testing.T) {
	l := chainOf(t, 1, 1)
	blk := NewBlock(1, [32]byte{0xde, 0xad}, nil, time.Now())
	if err := l.Append(blk); err == nil {
		t.Fatal("wrong prev hash accepted")
	}
}

func TestAppendRejectsTamperedData(t *testing.T) {
	l := chainOf(t, 1, 1)
	txs := []Transaction{testTx(t, "tampered")}
	blk := NewBlock(1, l.TipHash(), txs, time.Now())
	blk.Txs[0].Response = []byte("changed-after-hashing")
	if err := l.Append(blk); err == nil {
		t.Fatal("tampered block data accepted")
	}
}

func TestAppendRejectsFlagMismatch(t *testing.T) {
	l := chainOf(t, 1, 1)
	txs := []Transaction{testTx(t, "x")}
	blk := NewBlock(1, l.TipHash(), txs, time.Now())
	blk.Metadata.Flags = nil
	if err := l.Append(blk); err == nil {
		t.Fatal("flag/tx count mismatch accepted")
	}
}

func TestGetTx(t *testing.T) {
	l := chainOf(t, 3, 4)
	tx, flag, blockNum, err := l.GetTx("tx-7")
	if err != nil {
		t.Fatal(err)
	}
	if tx.ID != "tx-7" || flag != Valid || blockNum != 1 {
		t.Fatalf("tx=%s flag=%s block=%d", tx.ID, flag, blockNum)
	}
	if _, _, _, err := l.GetTx("nope"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	if !l.HasTx("tx-0") || l.HasTx("ghost") {
		t.Fatal("HasTx wrong")
	}
}

func TestGetBlockOutOfRange(t *testing.T) {
	l := chainOf(t, 2, 1)
	if _, err := l.GetBlock(2); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestVerifyChainDetectsTamper(t *testing.T) {
	l := chainOf(t, 4, 2)
	// Reach in and tamper with a committed transaction.
	blk, _ := l.GetBlock(2)
	blk.Txs[0].Response = []byte("evil")
	if err := l.VerifyChain(); err == nil {
		t.Fatal("tamper not detected")
	}
}

func TestTxMerkleProof(t *testing.T) {
	l := chainOf(t, 1, 5)
	blk, _ := l.GetBlock(0)
	for i := range blk.Txs {
		proof, err := blk.TxProof(i)
		if err != nil {
			t.Fatal(err)
		}
		if !blk.VerifyTxInclusion(&blk.Txs[i], proof) {
			t.Fatalf("tx %d proof failed", i)
		}
	}
	// Wrong tx against right proof fails.
	proof, _ := blk.TxProof(0)
	other := testTx(t, "other")
	if blk.VerifyTxInclusion(&other, proof) {
		t.Fatal("foreign tx verified")
	}
}

func TestIterateStops(t *testing.T) {
	l := chainOf(t, 5, 1)
	count := 0
	l.Iterate(func(*Block) bool {
		count++
		return count < 3
	})
	if count != 3 {
		t.Fatalf("iterate visited %d", count)
	}
}

func TestStats(t *testing.T) {
	l := New()
	txs := []Transaction{testTx(t, "a"), testTx(t, "b"), testTx(t, "c")}
	blk := NewBlock(0, l.TipHash(), txs, time.Now())
	blk.Metadata.Flags[1] = MVCCConflict
	if err := l.Append(blk); err != nil {
		t.Fatal(err)
	}
	s := l.Stats()
	if s.Height != 1 || s.TotalTxs != 3 || s.ValidTxs != 2 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestValidationCodeStrings(t *testing.T) {
	codes := []ValidationCode{Valid, MVCCConflict, EndorsementPolicyFailure, BadCreatorSignature, InvalidChaincode, InvalidOther}
	seen := map[string]bool{}
	for _, c := range codes {
		s := c.String()
		if s == "" || seen[s] {
			t.Fatalf("code %d has bad string %q", c, s)
		}
		seen[s] = true
	}
}

func TestNewTxIDUnique(t *testing.T) {
	s, _ := msp.NewSigner("o", "n", msp.RoleMember)
	a := NewTxID(s.Identity, []byte("nonce1"))
	b := NewTxID(s.Identity, []byte("nonce2"))
	if a == b {
		t.Fatal("different nonces same txid")
	}
	if len(a) != 64 {
		t.Fatalf("txid length %d", len(a))
	}
}

func TestEnvelopeSignature(t *testing.T) {
	tx := testTx(t, "signed")
	if !tx.Creator.Verify(tx.SigningBytes(), tx.Signature) {
		t.Fatal("envelope signature invalid")
	}
	tx.Response = []byte("tampered")
	if tx.Creator.Verify(tx.SigningBytes(), tx.Signature) {
		t.Fatal("tampered envelope verified")
	}
}

func TestBlockHeaderHashCoversFields(t *testing.T) {
	h := BlockHeader{Number: 1, PrevHash: [32]byte{1}, DataHash: [32]byte{2}}
	base := h.Hash()
	h2 := h
	h2.Number = 2
	if h2.Hash() == base {
		t.Fatal("hash ignores number")
	}
	h3 := h
	h3.PrevHash = [32]byte{9}
	if h3.Hash() == base {
		t.Fatal("hash ignores prev")
	}
	h4 := h
	h4.DataHash = [32]byte{9}
	if h4.Hash() == base {
		t.Fatal("hash ignores data hash")
	}
}

func TestEmptyBlockDataHashStable(t *testing.T) {
	if ComputeDataHash(nil) != ComputeDataHash(nil) {
		t.Fatal("empty data hash unstable")
	}
}
