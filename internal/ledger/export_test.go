package ledger

import (
	"bytes"
	"strings"
	"testing"
)

func TestExportImportRoundTrip(t *testing.T) {
	src := chainOf(t, 4, 3)
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	n, err := dst.Import(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("imported %d blocks", n)
	}
	if dst.Height() != src.Height() || dst.TipHash() != src.TipHash() {
		t.Fatal("import diverged from source")
	}
	if err := dst.VerifyChain(); err != nil {
		t.Fatal(err)
	}
	// Tx index rebuilt.
	if _, _, _, err := dst.GetTx("tx-5"); err != nil {
		t.Fatalf("tx lookup after import: %v", err)
	}
}

func TestImportRejectsTamperedDump(t *testing.T) {
	src := chainOf(t, 2, 2)
	var buf bytes.Buffer
	if err := src.Export(&buf); err != nil {
		t.Fatal(err)
	}
	dump := strings.Replace(buf.String(), `"id":"tx-0"`, `"id":"tx-X"`, 1)
	dst := New()
	if _, err := dst.Import(strings.NewReader(dump)); err == nil {
		t.Fatal("tampered dump imported")
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	dst := New()
	if _, err := dst.Import(strings.NewReader("not json\n")); err == nil {
		t.Fatal("garbage imported")
	}
}

func TestImportEmptyStream(t *testing.T) {
	dst := New()
	n, err := dst.Import(strings.NewReader(""))
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}

func TestBlocksFrom(t *testing.T) {
	l := chainOf(t, 5, 1)
	got := l.BlocksFrom(3)
	if len(got) != 2 || got[0].Header.Number != 3 || got[1].Header.Number != 4 {
		t.Fatalf("BlocksFrom(3) = %d blocks", len(got))
	}
	if len(l.BlocksFrom(99)) != 0 {
		t.Fatal("phantom blocks")
	}
}
