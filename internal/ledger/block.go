package ledger

import (
	"crypto/sha256"
	"encoding/binary"
	"time"

	"socialchain/internal/merkle"
)

// BlockHeader chains blocks: each header commits to the previous header's
// hash and to the Merkle root of the block's transactions.
type BlockHeader struct {
	Number    uint64    `json:"number"`
	PrevHash  [32]byte  `json:"prev_hash"`
	DataHash  [32]byte  `json:"data_hash"`
	Timestamp time.Time `json:"timestamp"`
}

// Hash computes the header hash that the next block must reference.
func (h BlockHeader) Hash() [32]byte {
	buf := make([]byte, 8, 8+64)
	binary.BigEndian.PutUint64(buf, h.Number)
	buf = append(buf, h.PrevHash[:]...)
	buf = append(buf, h.DataHash[:]...)
	return sha256.Sum256(buf)
}

// BlockMetadata carries per-transaction validation flags set by committers.
type BlockMetadata struct {
	Flags []ValidationCode `json:"flags"`
}

// Block is a batch of ordered transactions.
type Block struct {
	Header   BlockHeader   `json:"header"`
	Txs      []Transaction `json:"txs"`
	Metadata BlockMetadata `json:"metadata"`
}

// ComputeDataHash returns the Merkle root over the block's transactions.
func ComputeDataHash(txs []Transaction) [32]byte {
	leaves := make([][]byte, len(txs))
	for i := range txs {
		leaves[i] = txs[i].Bytes()
	}
	return merkle.RootOf(leaves)
}

// NewBlock assembles a block at the given height referencing prevHash.
func NewBlock(number uint64, prevHash [32]byte, txs []Transaction, ts time.Time) *Block {
	return &Block{
		Header: BlockHeader{
			Number:    number,
			PrevHash:  prevHash,
			DataHash:  ComputeDataHash(txs),
			Timestamp: ts,
		},
		Txs:      txs,
		Metadata: BlockMetadata{Flags: make([]ValidationCode, len(txs))},
	}
}

// TxProof builds a Merkle inclusion proof for the i-th transaction.
func (b *Block) TxProof(i int) (merkle.Proof, error) {
	leaves := make([][]byte, len(b.Txs))
	for j := range b.Txs {
		leaves[j] = b.Txs[j].Bytes()
	}
	return merkle.New(leaves).Prove(i)
}

// VerifyTxInclusion checks a transaction's Merkle proof against the header.
func (b *Block) VerifyTxInclusion(tx *Transaction, proof merkle.Proof) bool {
	return merkle.Verify(b.Header.DataHash, tx.Bytes(), proof)
}
