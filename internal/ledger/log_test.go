package ledger

import (
	"os"
	"path/filepath"
	"testing"
	"time"
)

// logChainOf builds a small hash-linked chain of empty blocks.
func logChainOf(n int) []*Block {
	var blocks []*Block
	prev := [32]byte{}
	for i := 0; i < n; i++ {
		b := NewBlock(uint64(i), prev, nil, time.Unix(int64(1000+i), 0))
		blocks = append(blocks, b)
		prev = b.Header.Hash()
	}
	return blocks
}

func TestLogAppendReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.wal")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	chain := logChainOf(4)
	for _, b := range chain {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	got := re.Blocks()
	if len(got) != len(chain) {
		t.Fatalf("recovered %d blocks, want %d", len(got), len(chain))
	}
	for i, b := range got {
		if b.Header.Hash() != chain[i].Header.Hash() {
			t.Fatalf("block %d hash differs after reopen", i)
		}
	}
	if re.Height() != 4 {
		t.Fatalf("Height = %d", re.Height())
	}
	// Blocks are handed out exactly once.
	if re.Blocks() != nil {
		t.Fatal("second Blocks() returned data")
	}
}

func TestLogRejectsOutOfOrderAppend(t *testing.T) {
	l, err := OpenLog(filepath.Join(t.TempDir(), "blocks.wal"))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	chain := logChainOf(3)
	if err := l.Append(chain[1]); err == nil {
		t.Fatal("accepted block 1 at log height 0")
	}
	if err := l.Append(chain[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(chain[2]); err == nil {
		t.Fatal("accepted block 2 at log height 1")
	}
}

// TestLogTornTail cuts the file at every offset inside the final record:
// recovery must always land on the last fully-appended block, truncate
// the garbage, and accept fresh appends.
func TestLogTornTail(t *testing.T) {
	ref := filepath.Join(t.TempDir(), "blocks.wal")
	l, err := OpenLog(ref)
	if err != nil {
		t.Fatal(err)
	}
	chain := logChainOf(3)
	var lastStart int64
	for _, b := range chain {
		st, err := os.Stat(ref)
		if err != nil {
			t.Fatal(err)
		}
		lastStart = st.Size()
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	full, err := os.ReadFile(ref)
	if err != nil {
		t.Fatal(err)
	}

	for cut := lastStart; cut < int64(len(full)); cut += 7 { // stride keeps the sweep fast
		path := filepath.Join(t.TempDir(), "torn.wal")
		if err := os.WriteFile(path, full[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		re, err := OpenLog(path)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		if got := len(re.Blocks()); got != 2 {
			t.Fatalf("cut %d: recovered %d blocks, want 2", cut, got)
		}
		// The torn tail is gone: re-appending block 2 must work.
		if err := re.Append(chain[2]); err != nil {
			t.Fatalf("cut %d: re-append: %v", cut, err)
		}
		if err := re.Close(); err != nil {
			t.Fatal(err)
		}
		final, err := OpenLog(path)
		if err != nil {
			t.Fatal(err)
		}
		if got := len(final.Blocks()); got != 3 {
			t.Fatalf("cut %d: after re-append recovered %d blocks", cut, got)
		}
		final.Close()
	}
}

// TestLogMidFileCorruptionIsFatal flips a byte in an EARLY record while
// valid blocks follow: recovery must refuse (and must not truncate the
// committed suffix away) rather than silently shorten the chain.
func TestLogMidFileCorruptionIsFatal(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blocks.wal")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range logChainOf(3) {
		if err := l.Append(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupted := append([]byte(nil), data...)
	corrupted[20] ^= 0xff // inside block 0's payload
	if err := os.WriteFile(path, corrupted, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(path); err == nil {
		t.Fatal("mid-file corruption recovered silently")
	}
	// The committed suffix must still be on disk, untouched.
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != len(data) {
		t.Fatalf("failed open truncated the log: %d -> %d bytes", len(data), len(after))
	}
}

func TestLogRejectsNumberingGap(t *testing.T) {
	// A log whose records skip a number is corrupt, not torn.
	path := filepath.Join(t.TempDir(), "blocks.wal")
	l, err := OpenLog(path)
	if err != nil {
		t.Fatal(err)
	}
	chain := logChainOf(2)
	if err := l.Append(chain[0]); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Append block 1's record twice by concatenating the file with itself
	// minus the genesis record — i.e. forge a duplicate number.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	forged := append(append([]byte(nil), data...), data...)
	if err := os.WriteFile(path, forged, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenLog(path); err == nil {
		t.Fatal("log with duplicate block numbers opened")
	}
}
