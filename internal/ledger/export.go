package ledger

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
)

// Export writes the chain as one JSON block per line (a portable audit
// dump: auditors can re-verify the hash chain offline, and lagging peers
// can bootstrap from it).
func (l *Ledger) Export(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var exportErr error
	l.Iterate(func(b *Block) bool {
		enc, err := json.Marshal(b)
		if err != nil {
			exportErr = err
			return false
		}
		if _, err := bw.Write(enc); err != nil {
			exportErr = err
			return false
		}
		if err := bw.WriteByte('\n'); err != nil {
			exportErr = err
			return false
		}
		return true
	})
	if exportErr != nil {
		return fmt.Errorf("ledger: export: %w", exportErr)
	}
	return bw.Flush()
}

// Import reads an Export stream and appends every block, verifying the
// hash chain as it goes (Append re-checks numbering, prev-hash linkage and
// data hashes). The ledger must be at the height the dump starts at —
// usually empty.
func (l *Ledger) Import(r io.Reader) (int, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	n := 0
	for {
		var b Block
		if err := dec.Decode(&b); err == io.EOF {
			return n, nil
		} else if err != nil {
			return n, fmt.Errorf("ledger: import block %d: %w", n, err)
		}
		if err := l.Append(&b); err != nil {
			return n, fmt.Errorf("ledger: import: %w", err)
		}
		n++
	}
}

// BlocksFrom returns all blocks with number >= from, for peer catch-up.
func (l *Ledger) BlocksFrom(from uint64) []*Block {
	var out []*Block
	l.Iterate(func(b *Block) bool {
		if b.Header.Number >= from {
			out = append(out, b)
		}
		return true
	})
	return out
}
