package ledger

import (
	"errors"
	"fmt"
	"sync"
)

// ErrNotFound is returned for unknown blocks or transactions.
var ErrNotFound = errors.New("ledger: not found")

// Ledger is an append-only chain of blocks with transaction indexes.
type Ledger struct {
	mu      sync.RWMutex
	blocks  []*Block
	txIndex map[string]txLoc
}

type txLoc struct {
	block uint64
	idx   int
}

// New returns an empty ledger (height 0, no genesis yet).
func New() *Ledger {
	return &Ledger{txIndex: make(map[string]txLoc)}
}

// Height returns the number of committed blocks.
func (l *Ledger) Height() uint64 {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return uint64(len(l.blocks))
}

// TipHash returns the hash of the latest block header, or the zero hash for
// an empty chain.
func (l *Ledger) TipHash() [32]byte {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if len(l.blocks) == 0 {
		return [32]byte{}
	}
	return l.blocks[len(l.blocks)-1].Header.Hash()
}

// verifyNextLocked runs the structural checks Append enforces. Caller
// holds at least a read lock.
func (l *Ledger) verifyNextLocked(b *Block) error {
	height := uint64(len(l.blocks))
	if b.Header.Number != height {
		return fmt.Errorf("ledger: block number %d != expected height %d", b.Header.Number, height)
	}
	var prev [32]byte
	if height > 0 {
		prev = l.blocks[height-1].Header.Hash()
	}
	if b.Header.PrevHash != prev {
		return fmt.Errorf("ledger: block %d prev hash mismatch", b.Header.Number)
	}
	if got, want := ComputeDataHash(b.Txs), b.Header.DataHash; got != want {
		return fmt.Errorf("ledger: block %d data hash mismatch", b.Header.Number)
	}
	if len(b.Metadata.Flags) != len(b.Txs) {
		return fmt.Errorf("ledger: block %d has %d flags for %d txs", b.Header.Number, len(b.Metadata.Flags), len(b.Txs))
	}
	return nil
}

// VerifyNext checks that b would be accepted as the next block — correct
// number, prev-hash linkage, data hash, flag count — without committing
// it. Durable committers call this before writing b to the block log so a
// malformed block can never poison the persisted chain.
func (l *Ledger) VerifyNext(b *Block) error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	return l.verifyNextLocked(b)
}

// Append commits a block after structural validation: the block number must
// equal the current height and PrevHash must reference the tip.
func (l *Ledger) Append(b *Block) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if err := l.verifyNextLocked(b); err != nil {
		return err
	}
	l.blocks = append(l.blocks, b)
	for i := range b.Txs {
		l.txIndex[b.Txs[i].ID] = txLoc{block: b.Header.Number, idx: i}
	}
	return nil
}

// GetBlock returns block n.
func (l *Ledger) GetBlock(n uint64) (*Block, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	if n >= uint64(len(l.blocks)) {
		return nil, fmt.Errorf("%w: block %d (height %d)", ErrNotFound, n, len(l.blocks))
	}
	return l.blocks[n], nil
}

// GetTx returns a transaction, its validation flag, and its block number.
func (l *Ledger) GetTx(txID string) (*Transaction, ValidationCode, uint64, error) {
	l.mu.RLock()
	defer l.mu.RUnlock()
	loc, ok := l.txIndex[txID]
	if !ok {
		return nil, InvalidOther, 0, fmt.Errorf("%w: tx %s", ErrNotFound, txID)
	}
	b := l.blocks[loc.block]
	return &b.Txs[loc.idx], b.Metadata.Flags[loc.idx], loc.block, nil
}

// HasTx reports whether txID is committed (valid or not).
func (l *Ledger) HasTx(txID string) bool {
	l.mu.RLock()
	defer l.mu.RUnlock()
	_, ok := l.txIndex[txID]
	return ok
}

// VerifyChain re-checks the whole hash chain and every data hash, returning
// the first inconsistency. This is the tamper-evidence property the paper
// relies on for provenance.
func (l *Ledger) VerifyChain() error {
	l.mu.RLock()
	defer l.mu.RUnlock()
	var prev [32]byte
	for i, b := range l.blocks {
		if b.Header.Number != uint64(i) {
			return fmt.Errorf("ledger: block %d has number %d", i, b.Header.Number)
		}
		if b.Header.PrevHash != prev {
			return fmt.Errorf("ledger: block %d prev-hash broken", i)
		}
		if ComputeDataHash(b.Txs) != b.Header.DataHash {
			return fmt.Errorf("ledger: block %d data hash broken", i)
		}
		prev = b.Header.Hash()
	}
	return nil
}

// Iterate calls fn for every block in order; fn returning false stops.
func (l *Ledger) Iterate(fn func(*Block) bool) {
	l.mu.RLock()
	blocks := append([]*Block(nil), l.blocks...)
	l.mu.RUnlock()
	for _, b := range blocks {
		if !fn(b) {
			return
		}
	}
}

// Stats summarises the chain for monitoring.
type Stats struct {
	Height   uint64
	TotalTxs int
	ValidTxs int
}

// Stats computes chain statistics.
func (l *Ledger) Stats() Stats {
	var s Stats
	l.Iterate(func(b *Block) bool {
		s.Height = b.Header.Number + 1
		s.TotalTxs += len(b.Txs)
		for _, f := range b.Metadata.Flags {
			if f == Valid {
				s.ValidTxs++
			}
		}
		return true
	})
	return s
}
