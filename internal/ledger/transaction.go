// Package ledger implements the blockchain itself: transaction envelopes,
// blocks with a SHA-256 hash chain and Merkle data hashes, validation flags
// recorded in block metadata, and whole-chain integrity verification — the
// "Ledger / Transactions / Metadata" stack of the paper's Figure 1.
package ledger

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"time"

	"socialchain/internal/msp"
	"socialchain/internal/statedb"
)

// TxPayload names the chaincode invocation a transaction carries. A
// batched ingest envelope carries its calls in Batch instead (one entry
// per call, each with Chaincode/Fn/Args set and Batch empty); the calls
// executed on one simulator and committed atomically under this envelope.
type TxPayload struct {
	Chaincode string      `json:"chaincode"`
	Fn        string      `json:"fn"`
	Args      [][]byte    `json:"args"`
	Batch     []TxPayload `json:"batch,omitempty"`
}

// Event is a chaincode-emitted application event carried in the
// transaction and delivered to subscribers when the transaction commits as
// valid.
type Event struct {
	Name    string `json:"name"`
	Payload []byte `json:"payload,omitempty"`
}

// Transaction is a fully endorsed transaction envelope ready for ordering.
type Transaction struct {
	ID           string            `json:"id"`
	ChannelID    string            `json:"channel_id"`
	Creator      msp.Identity      `json:"creator"`
	Payload      TxPayload         `json:"payload"`
	Response     []byte            `json:"response,omitempty"`
	RWSet        statedb.RWSet     `json:"rw_set"`
	Events       []Event           `json:"events,omitempty"`
	Endorsements []msp.Endorsement `json:"endorsements"`
	Timestamp    time.Time         `json:"timestamp"`
	Signature    []byte            `json:"signature,omitempty"`
	// Trace is the observability trace ID carried from the proposal into
	// the committed envelope. Every replica stores the identical value (it
	// is part of the envelope the orderer replicates), so replica chains
	// stay byte-identical; it is outside SigningBytes, so signatures are
	// unaffected.
	Trace string `json:"trace,omitempty"`

	// digestMemo caches Digest (a JSON re-serialisation of the read/write
	// set per call otherwise): commit-time validation needs the digest for
	// the envelope signature, the watchdog scan and the policy evaluation.
	// It is only ever populated explicitly via PrecomputeDigest — Digest
	// does not store, so a transaction mutated after construction (tamper
	// scenarios, tests) still recomputes honestly. Unexported, so encoding
	// drops it and a decoded transaction starts unpinned.
	digestMemo []byte
}

// SigningBytes returns the canonical bytes the submitting client signs for
// the envelope: the endorsement digest bound to the transaction ID.
func (t *Transaction) SigningBytes() []byte {
	d := t.Digest()
	out := make([]byte, 0, len(d)+len(t.ID))
	out = append(out, d...)
	return append(out, t.ID...)
}

// NewTxID derives a transaction ID from the creator and a nonce, following
// Fabric's txid = hash(nonce || creator).
func NewTxID(creator msp.Identity, nonce []byte) string {
	h := sha256.New()
	h.Write(nonce)
	b, _ := creator.Marshal()
	h.Write(b)
	return hex.EncodeToString(h.Sum(nil))
}

// Digest returns the endorsement digest of this transaction's simulation
// result (RWSet + response). A digest pinned with PrecomputeDigest is
// returned directly; otherwise it is recomputed on every call.
func (t *Transaction) Digest() []byte {
	if t.digestMemo != nil {
		return t.digestMemo
	}
	return t.RWSet.Digest(t.Response)
}

// PrecomputeDigest pins the digest memo so subsequent Digest and
// SigningBytes calls skip the RWSet re-serialisation. Call it only once the
// envelope's RWSet and Response are final, from the goroutine that owns the
// transaction — concurrent readers are safe only after the write.
func (t *Transaction) PrecomputeDigest() {
	if t.digestMemo == nil {
		t.digestMemo = t.RWSet.Digest(t.Response)
	}
}

// Bytes returns the canonical encoding used for block data hashing.
func (t *Transaction) Bytes() []byte {
	b, err := json.Marshal(t)
	if err != nil {
		panic("ledger: transaction marshal: " + err.Error())
	}
	return b
}

// ValidationCode records why a transaction was accepted or rejected at
// commit time, stored per-transaction in block metadata as in Fabric.
type ValidationCode uint8

// Validation outcomes.
const (
	Valid ValidationCode = iota
	MVCCConflict
	EndorsementPolicyFailure
	BadCreatorSignature
	InvalidChaincode
	InvalidOther
)

// String renders the code for logs and metrics.
func (c ValidationCode) String() string {
	switch c {
	case Valid:
		return "VALID"
	case MVCCConflict:
		return "MVCC_READ_CONFLICT"
	case EndorsementPolicyFailure:
		return "ENDORSEMENT_POLICY_FAILURE"
	case BadCreatorSignature:
		return "BAD_CREATOR_SIGNATURE"
	case InvalidChaincode:
		return "INVALID_CHAINCODE"
	default:
		return "INVALID_OTHER"
	}
}

// Fmt helpers used by tests.
var _ = fmt.Sprintf
