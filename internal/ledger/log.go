package ledger

// The block log is the chain's durable spine: every block a peer commits
// is appended here BEFORE its write sets touch the state engines, so a
// crash-recovering peer can replay the exact committed sequence through
// the same validate-then-commit path a live delivery takes. The format is
// deliberately independent of the state engines — one CRC-framed JSON
// record per block — so an operator can also audit a chain with nothing
// but this file.
//
// Record framing (internal/walframe, shared with the storage WAL):
//
//	[4B big-endian payload length][4B IEEE CRC32 of payload][payload JSON]
//
// A torn tail — a partial record where the process died mid-append — is
// detected on open and truncated; every fully-appended block is
// recovered. Corruption before the tail (any CRC-valid record found
// after the damage) is a hard error: committed blocks are never
// silently destroyed.

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"socialchain/internal/walframe"
)

// Log is an append-only, crash-tolerant file of committed blocks.
type Log struct {
	f      *os.File
	path   string
	blocks []*Block // blocks recovered at open, handed out once
	next   uint64   // number the next appended block must carry
	buf    []byte
	err    error // sticky append failure: a torn frame may be on disk
}

// OpenLog opens (or creates) the block log at path, recovering every
// fully-committed block and truncating a torn tail. The recovered blocks
// are validated as a chain prefix (contiguous numbering from 0) and
// retrievable once via Blocks.
func OpenLog(path string) (*Log, error) {
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, fmt.Errorf("ledger: log dir: %w", err)
	}
	data, err := os.ReadFile(path)
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("ledger: read log: %w", err)
	}
	l := &Log{path: path}
	good := 0
	for off := 0; off < len(data); {
		payload, next, perr := walframe.Next(data, off)
		if perr != nil {
			break // torn (or corrupt) record; discriminated below
		}
		var b Block
		if err := json.Unmarshal(payload, &b); err != nil {
			return nil, fmt.Errorf("ledger: log record %d undecodable: %w", len(l.blocks), err)
		}
		if b.Header.Number != l.next {
			return nil, fmt.Errorf("ledger: log record %d carries block %d, want %d", len(l.blocks), b.Header.Number, l.next)
		}
		l.blocks = append(l.blocks, &b)
		l.next++
		off = next
		good = off
	}
	if err := walframe.RecoverTail(path, data, good); err != nil {
		return nil, fmt.Errorf("ledger: %w", err)
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("ledger: open log: %w", err)
	}
	l.f = f
	return l, nil
}

// Blocks returns the blocks recovered at open, in order, releasing the
// log's reference to them (recovery reads them exactly once).
func (l *Log) Blocks() []*Block {
	b := l.blocks
	l.blocks = nil
	return b
}

// Height returns the number of blocks the log holds.
func (l *Log) Height() uint64 { return l.next }

// Append writes one block. Blocks must arrive in chain order; the caller
// (the peer's commit path) appends here before applying state, so a crash
// between the two is repaired by replaying the log over the state's
// savepoint.
func (l *Log) Append(b *Block) error {
	if l.err != nil {
		// A failed write may have left a torn frame on disk; appending a
		// later complete frame after it would turn a recoverable torn
		// tail into unrecoverable mid-log corruption. Fail-stop instead.
		return l.err
	}
	if b.Header.Number != l.next {
		return fmt.Errorf("ledger: log append block %d at log height %d", b.Header.Number, l.next)
	}
	payload, err := json.Marshal(b)
	if err != nil {
		return fmt.Errorf("ledger: log marshal block %d: %w", b.Header.Number, err)
	}
	buf := l.buf[:0]
	buf = append(buf, make([]byte, walframe.HeaderLen)...)
	buf = append(buf, payload...)
	walframe.Seal(buf)
	l.buf = buf
	if _, err := l.f.Write(buf); err != nil {
		l.err = fmt.Errorf("ledger: log append block %d: %w", b.Header.Number, err)
		return l.err
	}
	l.next++
	return nil
}

// Sync flushes appended blocks to stable storage (reporting a sticky
// append failure first).
func (l *Log) Sync() error {
	if l.err != nil {
		return l.err
	}
	if l.f == nil {
		return nil
	}
	return l.f.Sync()
}

// Close syncs and closes the log. Idempotent.
func (l *Log) Close() error {
	if l.f == nil {
		return nil
	}
	err := l.f.Sync()
	if cerr := l.f.Close(); err == nil {
		err = cerr
	}
	l.f = nil
	return err
}
