package consensus

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"socialchain/internal/msp"
	"socialchain/internal/transport"
)

// busHarness spins up n validators whose messages cross a real byte
// transport (encode -> frame -> decode) instead of pointer passing.
type busHarness struct {
	t          *testing.T
	validators []*Validator
	endpoints  []transport.Transport
	mu         sync.Mutex
	delivered  map[string][]string
}

func newBusHarness(t *testing.T, endpoints []transport.Transport, timeout time.Duration) *busHarness {
	t.Helper()
	n := len(endpoints)
	h := &busHarness{t: t, endpoints: endpoints, delivered: make(map[string][]string)}
	ids := make([]string, n)
	signers := make([]*msp.Signer, n)
	idents := make(map[string]msp.Identity, n)
	for i := 0; i < n; i++ {
		ids[i] = endpoints[i].ID()
		s, err := msp.NewSigner("org", ids[i], msp.RoleMember)
		if err != nil {
			t.Fatalf("signer: %v", err)
		}
		signers[i] = s
		idents[ids[i]] = s.Identity
	}
	for i := 0; i < n; i++ {
		id := ids[i]
		v := NewValidator(Config{
			ID:             id,
			Validators:     ids,
			Signer:         signers[i],
			Identities:     idents,
			Sender:         NewBus(endpoints[i], "main", ids),
			RequestTimeout: timeout,
			Deliver: func(seq uint64, payload []byte) {
				h.mu.Lock()
				h.delivered[id] = append(h.delivered[id], string(payload))
				h.mu.Unlock()
			},
		})
		h.validators = append(h.validators, v)
	}
	for _, v := range h.validators {
		v.Start()
	}
	t.Cleanup(func() {
		for _, v := range h.validators {
			v.Stop()
		}
		for _, e := range endpoints {
			e.Close()
		}
	})
	return h
}

func (h *busHarness) waitDelivered(i, want int, timeout time.Duration) []string {
	h.t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		h.mu.Lock()
		got := append([]string(nil), h.delivered[h.endpoints[i].ID()]...)
		h.mu.Unlock()
		if len(got) >= want {
			return got
		}
		if time.Now().After(deadline) {
			h.t.Fatalf("validator %d delivered %v, want %d payloads", i, got, want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBusConsensusOverInProcTransport(t *testing.T) {
	hub := transport.NewInProcNet(nil, nil)
	endpoints := make([]transport.Transport, 4)
	for i := range endpoints {
		endpoints[i] = hub.Node(fmt.Sprintf("v%d", i))
	}
	h := newBusHarness(t, endpoints, time.Second)
	h.validators[0].Propose([]byte("tx-1"))
	h.validators[2].Propose([]byte("tx-2"))
	var want []string
	for i := 0; i < 4; i++ {
		got := h.waitDelivered(i, 2, 5*time.Second)
		if i == 0 {
			want = got
			continue
		}
		if len(got) != len(want) || got[0] != want[0] || got[1] != want[1] {
			t.Fatalf("divergent delivery: v0=%v v%d=%v", want, i, got)
		}
	}
}

func TestBusConsensusOverTCP(t *testing.T) {
	const n = 4
	ids := make([]string, n)
	tcps := make([]*transport.TCP, n)
	for i := range tcps {
		ids[i] = fmt.Sprintf("v%d", i)
		tr, err := transport.NewTCP(transport.TCPConfig{ID: ids[i], Cluster: "bus-test", Listen: "127.0.0.1:0"})
		if err != nil {
			t.Fatalf("tcp %d: %v", i, err)
		}
		tcps[i] = tr
	}
	endpoints := make([]transport.Transport, n)
	for i, tr := range tcps {
		for j, other := range tcps {
			if i != j {
				tr.AddPeer(ids[j], other.Addr())
			}
		}
		endpoints[i] = tr
	}
	h := newBusHarness(t, endpoints, 2*time.Second)
	for k := 0; k < 3; k++ {
		h.validators[k%n].Propose([]byte(fmt.Sprintf("tx-%d", k)))
	}
	var want []string
	for i := 0; i < n; i++ {
		got := h.waitDelivered(i, 3, 10*time.Second)
		if i == 0 {
			want = got
			continue
		}
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("divergent delivery over tcp: v0=%v v%d=%v", want, i, got)
		}
	}
}
