package consensus

import (
	"socialchain/internal/transport"
)

// busStreamPrefix namespaces consensus traffic per channel on the shared
// transport, so one endpoint can host a validator in every channel.
const busStreamPrefix = "cns/"

// Bus is the wire-backed Sender: it encodes messages onto a
// transport.Transport stream and decodes inbound frames into a bounded
// inbox with the same drop-on-full loss semantics as InProcNet. One Bus
// serves one validator in one channel; the underlying endpoint is shared
// across channels (and with the fabric RPC traffic).
type Bus struct {
	t      transport.Transport
	stream string
	peers  []string
	inbox  chan *Message
}

// NewBus attaches a consensus stream for one channel to the endpoint. The
// peer list is the channel's validator membership (this node included or
// not — sends to self are skipped).
func NewBus(t transport.Transport, channel string, peers []string) *Bus {
	b := &Bus{
		t:      t,
		stream: busStreamPrefix + channel,
		peers:  append([]string(nil), peers...),
		inbox:  make(chan *Message, inboxSize),
	}
	t.Handle(b.stream, b.onFrame)
	return b
}

// Register implements Inboxer: the bus is per-replica, so every id maps to
// its one inbox.
func (b *Bus) Register(string) <-chan *Message { return b.inbox }

func (b *Bus) onFrame(from string, payload []byte) error {
	m, err := DecodeMessage(payload)
	if err != nil {
		return err // torn/garbled message: counted as a drop by the transport
	}
	if m.From != from {
		return nil // transport identity must match the claimed origin
	}
	select {
	case b.inbox <- m:
		return nil
	default:
		return transport.ErrBackpressure
	}
}

// Send implements Sender. Errors (backpressure, reconnecting peer) are
// loss, which the protocol tolerates; the transport counts them.
func (b *Bus) Send(from, to string, msg *Message) {
	if to == b.t.ID() {
		return
	}
	_ = b.t.Send(to, b.stream, msg.Encode())
}

// Broadcast implements Sender, encoding once for all recipients.
func (b *Bus) Broadcast(from string, msg *Message) {
	enc := msg.Encode()
	for _, id := range b.peers {
		if id == b.t.ID() || id == from {
			continue
		}
		_ = b.t.Send(id, b.stream, enc)
	}
}
