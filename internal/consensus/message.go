// Package consensus implements the Byzantine fault tolerant consensus the
// paper's validators run (§III-A): a PBFT-style three-phase protocol
// (pre-prepare, prepare, commit) with quorum 2f+1 out of n = 3f+1, view
// changes on leader failure, signed messages, equivocation evidence and
// eviction of validators that act against the consensus rules.
package consensus

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/json"
)

// MsgType enumerates protocol messages.
type MsgType uint8

// Protocol message kinds.
const (
	MsgRequest MsgType = iota
	MsgPrePrepare
	MsgPrepare
	MsgCommit
	MsgViewChange
	MsgNewView
)

// String names the message type for logs.
func (t MsgType) String() string {
	switch t {
	case MsgRequest:
		return "REQUEST"
	case MsgPrePrepare:
		return "PRE-PREPARE"
	case MsgPrepare:
		return "PREPARE"
	case MsgCommit:
		return "COMMIT"
	case MsgViewChange:
		return "VIEW-CHANGE"
	case MsgNewView:
		return "NEW-VIEW"
	default:
		return "UNKNOWN"
	}
}

// Message is the signed unit validators exchange.
type Message struct {
	Type   MsgType  `json:"type"`
	View   uint64   `json:"view"`
	Seq    uint64   `json:"seq"`
	Digest [32]byte `json:"digest"`
	From   string   `json:"from"`

	// Payload carries the proposed batch (Request, PrePrepare) and, in a
	// NewView, the re-proposed pending payloads.
	Payload []byte `json:"payload,omitempty"`

	// PrePrepareEvidence embeds the leader-signed pre-prepare a replica is
	// preparing, so peers can detect leader equivocation conclusively.
	PrePrepareEvidence []byte `json:"pre_prepare_evidence,omitempty"`

	// Proofs carries the 2f+1 view-change messages justifying a NewView.
	Proofs [][]byte `json:"proofs,omitempty"`

	Signature []byte `json:"signature,omitempty"`

	// sigBytes memoises SigningBytes: quorum traffic verifies each message
	// once but the canonical bytes are also needed for the verify-cache key,
	// and broadcast signs the same bytes for every recipient. Unexported, so
	// JSON round-trips drop it (a decoded message recomputes lazily). Any
	// code that mutates a signed-over field after copying a Message must
	// call invalidate() or the memo goes stale.
	sigBytes []byte
}

// SigningBytes returns the canonical bytes covered by the signature,
// memoised after the first call. Not safe for concurrent first calls; the
// sender populates the memo before a message is shared across goroutines,
// after which all access is read-only.
func (m *Message) SigningBytes() []byte {
	if m.sigBytes == nil {
		m.sigBytes = m.computeSigningBytes()
	}
	return m.sigBytes
}

// invalidate drops the memoised signing bytes after a field mutation.
func (m *Message) invalidate() { m.sigBytes = nil }

func (m *Message) computeSigningBytes() []byte {
	buf := make([]byte, 0, 128)
	buf = append(buf, byte(m.Type))
	buf = binary.BigEndian.AppendUint64(buf, m.View)
	buf = binary.BigEndian.AppendUint64(buf, m.Seq)
	buf = append(buf, m.Digest[:]...)
	buf = append(buf, []byte(m.From)...)
	// Payload and evidence are bound via hashes so signatures stay small.
	ph := sha256.Sum256(m.Payload)
	buf = append(buf, ph[:]...)
	eh := sha256.Sum256(m.PrePrepareEvidence)
	buf = append(buf, eh[:]...)
	for _, p := range m.Proofs {
		hp := sha256.Sum256(p)
		buf = append(buf, hp[:]...)
	}
	return buf
}

// Encode serialises the message for embedding as evidence or proof.
func (m *Message) Encode() []byte {
	b, err := json.Marshal(m)
	if err != nil {
		panic("consensus: message marshal: " + err.Error())
	}
	return b
}

// DecodeMessage parses a message encoded with Encode.
func DecodeMessage(b []byte) (*Message, error) {
	var m Message
	if err := json.Unmarshal(b, &m); err != nil {
		return nil, err
	}
	return &m, nil
}

// DigestOf hashes a proposal payload.
func DigestOf(payload []byte) [32]byte { return sha256.Sum256(payload) }
