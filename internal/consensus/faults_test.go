package consensus

import (
	"fmt"
	"testing"
	"time"
)

func TestTwoSilentLeadersEscalation(t *testing.T) {
	// n=7 tolerates f=2; with the leaders of views 0 AND 1 silent, the
	// view must escalate twice before the request commits.
	h := newHarness(t, 7, map[int]Behavior{0: Silent{}, 1: Silent{}}, 250*time.Millisecond)
	h.validators[2].Propose([]byte("tx-escalate"))
	for _, i := range []int{2, 3, 4, 5, 6} {
		if !h.waitDelivered(i, 1, 20*time.Second) {
			t.Fatalf("validator %d did not deliver after double leader failure", i)
		}
	}
	if v := h.validators[2].View(); v < 2 {
		t.Fatalf("view = %d, expected >= 2 after two failed leaders", v)
	}
}

func TestMuteAfterCrashMidProtocol(t *testing.T) {
	// A validator that goes quiet after its first few messages models a
	// mid-protocol crash; n=4 must keep committing.
	h := newHarness(t, 4, map[int]Behavior{3: &MuteAfter{N: 5}}, 500*time.Millisecond)
	for k := 0; k < 5; k++ {
		h.validators[0].Propose([]byte(fmt.Sprintf("tx-crash-%d", k)))
	}
	for _, i := range []int{0, 1, 2} {
		if !h.waitDelivered(i, 5, 15*time.Second) {
			t.Fatalf("validator %d delivered %d/5", i, len(h.deliveredAt(i)))
		}
	}
}

func TestPartitionedFollowerDoesNotBlock(t *testing.T) {
	// Cutting all links to one follower must not stop the remaining
	// validators (equivalent to a crashed node).
	h := newHarness(t, 4, nil, 500*time.Millisecond)
	for _, other := range []string{"v0", "v1", "v2"} {
		h.net.Cut(other, "v3")
		h.net.Cut("v3", other)
	}
	h.validators[0].Propose([]byte("tx-partition"))
	for _, i := range []int{0, 1, 2} {
		if !h.waitDelivered(i, 1, 10*time.Second) {
			t.Fatalf("validator %d did not deliver with v3 partitioned", i)
		}
	}
	if len(h.deliveredAt(3)) != 0 {
		t.Fatal("partitioned validator delivered despite cut links")
	}
}

func TestHealedLinkDeliversSubsequentTraffic(t *testing.T) {
	// After healing a partition, NEW requests flow to the previously cut
	// validator again (it participates in fresh instances; no state
	// transfer for missed ones — a documented limitation matched by
	// Fabric's block-sync being a separate subsystem).
	h := newHarness(t, 4, nil, 500*time.Millisecond)
	h.validators[0].Propose([]byte("tx-before"))
	if !h.waitDelivered(0, 1, 10*time.Second) {
		t.Fatal("no delivery before partition")
	}
	// Partition and heal without traffic in between.
	for _, other := range []string{"v0", "v1", "v2"} {
		h.net.Cut(other, "v3")
		h.net.Cut("v3", other)
	}
	for _, other := range []string{"v0", "v1", "v2"} {
		h.net.Heal(other, "v3")
		h.net.Heal("v3", other)
	}
	h.validators[0].Propose([]byte("tx-after"))
	if !h.waitDelivered(3, 2, 10*time.Second) {
		t.Fatalf("healed validator delivered %d/2", len(h.deliveredAt(3)))
	}
}

func TestConcurrentProposalsFromAllValidators(t *testing.T) {
	h := newHarness(t, 4, nil, time.Second)
	const perValidator = 5
	for i := 0; i < 4; i++ {
		go func(i int) {
			for k := 0; k < perValidator; k++ {
				h.validators[i].Propose([]byte(fmt.Sprintf("tx-%d-%d", i, k)))
			}
		}(i)
	}
	want := 4 * perValidator
	for i := 0; i < 4; i++ {
		if !h.waitDelivered(i, want, 20*time.Second) {
			t.Fatalf("validator %d delivered %d/%d", i, len(h.deliveredAt(i)), want)
		}
	}
	// Identical order everywhere.
	ref := h.deliveredAt(0)
	for i := 1; i < 4; i++ {
		got := h.deliveredAt(i)
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("validator %d diverges at %d", i, j)
			}
		}
	}
}

func TestEvictionReportedOnce(t *testing.T) {
	h := newHarness(t, 4, map[int]Behavior{0: &Equivocator{Half: map[string]bool{"v1": true}}}, 300*time.Millisecond)
	h.validators[0].Propose([]byte("tx-evict-once"))
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		h.mu.Lock()
		total := 0
		for _, evs := range h.evictions {
			for _, e := range evs {
				if e == "v0" {
					total++
				}
			}
		}
		h.mu.Unlock()
		if total > 0 {
			// Wait a little longer; no validator may report v0 twice.
			time.Sleep(300 * time.Millisecond)
			h.mu.Lock()
			for id, evs := range h.evictions {
				count := 0
				for _, e := range evs {
					if e == "v0" {
						count++
					}
				}
				if count > 1 {
					h.mu.Unlock()
					t.Fatalf("validator %s reported v0 evicted %d times", id, count)
				}
			}
			h.mu.Unlock()
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("no eviction observed")
}

func TestViewChangeCounterAdvances(t *testing.T) {
	h := newHarness(t, 4, map[int]Behavior{0: Silent{}}, 200*time.Millisecond)
	h.validators[1].Propose([]byte("tx-vc-count"))
	if !h.waitDelivered(1, 1, 10*time.Second) {
		t.Fatal("no delivery")
	}
	if h.validators[1].ViewChanges() == 0 {
		t.Fatal("view change not counted")
	}
}

func TestDeliveredCountMatches(t *testing.T) {
	h := newHarness(t, 4, nil, time.Second)
	for k := 0; k < 7; k++ {
		h.validators[0].Propose([]byte(fmt.Sprintf("tx-count-%d", k)))
	}
	if !h.waitDelivered(2, 7, 10*time.Second) {
		t.Fatal("delivery incomplete")
	}
	if got := h.validators[2].DeliveredCount(); got != 7 {
		t.Fatalf("DeliveredCount = %d", got)
	}
	if got := h.validators[2].LastExecuted(); got < 7 {
		t.Fatalf("LastExecuted = %d", got)
	}
}
