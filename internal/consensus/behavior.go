package consensus

// Behavior lets tests and benchmarks inject byzantine faults into a
// validator. The honest behaviour passes messages through unchanged.
type Behavior interface {
	// OutboundFilter may mutate or suppress an outgoing message per
	// recipient. Returning nil suppresses the send.
	OutboundFilter(to string, msg *Message) *Message
}

// Honest is the default pass-through behaviour.
type Honest struct{}

// OutboundFilter implements Behavior.
func (Honest) OutboundFilter(to string, msg *Message) *Message { return msg }

// Silent suppresses every outgoing consensus message (pre-prepare,
// prepare, commit, view change): a validator whose consensus participation
// has crashed. Client request gossip still flows — the node's ordering
// front-end is alive, only its voting is dead — so submissions entering
// through a silent peer still reach the healthy validators. To model a
// fully dead node, sever its links with Network.Cut.
type Silent struct{}

// OutboundFilter implements Behavior.
func (Silent) OutboundFilter(to string, msg *Message) *Message {
	if msg.Type == MsgRequest {
		return msg
	}
	return nil
}

// Equivocator makes a leader send conflicting pre-prepares: recipients in
// Half get the true payload; the rest receive a corrupted payload with a
// different digest. Honest replicas detect the conflict via the signed
// pre-prepare evidence embedded in prepares and evict the leader.
type Equivocator struct {
	Half map[string]bool
}

// OutboundFilter implements Behavior.
func (e *Equivocator) OutboundFilter(to string, msg *Message) *Message {
	if msg.Type != MsgPrePrepare || e.Half[to] {
		return msg
	}
	alt := *msg
	alt.Payload = append(append([]byte(nil), msg.Payload...), 0xEE)
	alt.Digest = DigestOf(alt.Payload)
	// Signature is re-applied by the validator's signing hook after the
	// filter runs, so the equivocating message is validly signed.
	return &alt
}

// WrongDigest corrupts the digest of outgoing prepares and commits so the
// validator never contributes to honest quorums (a persistently faulty
// voter).
type WrongDigest struct{}

// OutboundFilter implements Behavior.
func (WrongDigest) OutboundFilter(to string, msg *Message) *Message {
	if msg.Type != MsgPrepare && msg.Type != MsgCommit {
		return msg
	}
	alt := *msg
	for i := range alt.Digest {
		alt.Digest[i] ^= 0xFF
	}
	return &alt
}

// MuteAfter behaves honestly for the first N outgoing messages, then goes
// silent — a validator that crashes mid-protocol.
type MuteAfter struct {
	N     int
	count int
}

// OutboundFilter implements Behavior.
func (m *MuteAfter) OutboundFilter(to string, msg *Message) *Message {
	m.count++
	if m.count > m.N {
		return nil
	}
	return msg
}
