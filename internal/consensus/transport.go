package consensus

import (
	"sync"

	"socialchain/internal/sim"
)

// inboxSize bounds each validator's message queue.
const inboxSize = 8192

// Network is the in-process message fabric between validators, with a
// pluggable latency model and fault injection (partitions, drops).
type Network struct {
	mu      sync.RWMutex
	inboxes map[string]chan *Message
	cut     map[string]map[string]bool // cut[a][b]: drop messages a->b
	latency sim.LatencyModel
	clock   sim.Clock
}

// NewNetwork creates a validator network.
func NewNetwork(latency sim.LatencyModel, clock sim.Clock) *Network {
	if latency == nil {
		latency = sim.ZeroLatency{}
	}
	if clock == nil {
		clock = sim.RealClock{}
	}
	return &Network{
		inboxes: make(map[string]chan *Message),
		cut:     make(map[string]map[string]bool),
		latency: latency,
		clock:   clock,
	}
}

// Register creates the inbox for a validator id.
func (n *Network) Register(id string) <-chan *Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	ch := make(chan *Message, inboxSize)
	n.inboxes[id] = ch
	return ch
}

// Peers returns the registered validator ids.
func (n *Network) Peers() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.inboxes))
	for id := range n.inboxes {
		out = append(out, id)
	}
	return out
}

// Cut severs the directed link from a to b (messages silently dropped).
func (n *Network) Cut(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cut[a] == nil {
		n.cut[a] = make(map[string]bool)
	}
	n.cut[a][b] = true
}

// Heal restores the directed link from a to b.
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cut[a] != nil {
		delete(n.cut[a], b)
	}
}

// Send delivers msg from -> to, honouring cuts and latency. Delivery is
// asynchronous; a full inbox drops the message (backpressure as loss, which
// BFT must tolerate anyway).
func (n *Network) Send(from, to string, msg *Message) {
	n.mu.RLock()
	ch, ok := n.inboxes[to]
	cutoff := n.cut[from][to]
	n.mu.RUnlock()
	if !ok || cutoff {
		return
	}
	d := n.latency.Delay(from, to)
	if d <= 0 {
		select {
		case ch <- msg:
		default:
		}
		return
	}
	go func() {
		n.clock.Sleep(d)
		select {
		case ch <- msg:
		default:
		}
	}()
}

// Broadcast sends msg from -> every registered validator except the sender.
func (n *Network) Broadcast(from string, msg *Message) {
	for _, id := range n.Peers() {
		if id != from {
			n.Send(from, id, msg)
		}
	}
}
