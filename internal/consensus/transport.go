package consensus

import (
	"sync"

	"socialchain/internal/sim"
)

// inboxSize bounds each validator's message queue.
const inboxSize = 8192

// Sender carries signed consensus messages between replicas. Two
// implementations exist: *InProcNet passes message pointers between
// in-process validators (deterministic, zero serialization — the default
// test harness) and *Bus encodes messages onto a transport.Transport
// stream (real sockets between OS processes). Loss is acceptable on either:
// PBFT tolerates dropped messages by design, so sends do not report errors.
type Sender interface {
	// Send transmits msg from -> to.
	Send(from, to string, msg *Message)
	// Broadcast transmits msg from -> every other known replica.
	Broadcast(from string, msg *Message)
}

// Inboxer is the optional Sender extension that provisions a replica's
// inbound queue; NewValidator uses it when Config.Inbox is not set
// explicitly.
type Inboxer interface {
	Register(id string) <-chan *Message
}

// InProcNet is the in-process Sender between validators, with a pluggable
// latency model and fault injection (partitions, drops). It was formerly
// named Network; the rename frees that word for the fabric layer and makes
// room for the wire-backed Bus beside it.
type InProcNet struct {
	mu      sync.RWMutex
	inboxes map[string]chan *Message
	cut     map[string]map[string]bool // cut[a][b]: drop messages a->b
	latency sim.LatencyModel
	clock   sim.Clock
}

// NewInProcNet creates an in-process validator network.
func NewInProcNet(latency sim.LatencyModel, clock sim.Clock) *InProcNet {
	if latency == nil {
		latency = sim.ZeroLatency{}
	}
	if clock == nil {
		clock = sim.RealClock{}
	}
	return &InProcNet{
		inboxes: make(map[string]chan *Message),
		cut:     make(map[string]map[string]bool),
		latency: latency,
		clock:   clock,
	}
}

// Register creates the inbox for a validator id.
func (n *InProcNet) Register(id string) <-chan *Message {
	n.mu.Lock()
	defer n.mu.Unlock()
	ch := make(chan *Message, inboxSize)
	n.inboxes[id] = ch
	return ch
}

// Peers returns the registered validator ids.
func (n *InProcNet) Peers() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	out := make([]string, 0, len(n.inboxes))
	for id := range n.inboxes {
		out = append(out, id)
	}
	return out
}

// Cut severs the directed link from a to b (messages silently dropped).
func (n *InProcNet) Cut(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cut[a] == nil {
		n.cut[a] = make(map[string]bool)
	}
	n.cut[a][b] = true
}

// Heal restores the directed link from a to b.
func (n *InProcNet) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.cut[a] != nil {
		delete(n.cut[a], b)
	}
}

// Send delivers msg from -> to, honouring cuts and latency. Delivery is
// asynchronous; a full inbox drops the message (backpressure as loss, which
// BFT must tolerate anyway).
func (n *InProcNet) Send(from, to string, msg *Message) {
	n.mu.RLock()
	ch, ok := n.inboxes[to]
	cutoff := n.cut[from][to]
	n.mu.RUnlock()
	if !ok || cutoff {
		return
	}
	d := n.latency.Delay(from, to)
	if d <= 0 {
		select {
		case ch <- msg:
		default:
		}
		return
	}
	go func() {
		n.clock.Sleep(d)
		select {
		case ch <- msg:
		default:
		}
	}()
}

// Broadcast sends msg from -> every registered validator except the sender.
func (n *InProcNet) Broadcast(from string, msg *Message) {
	for _, id := range n.Peers() {
		if id != from {
			n.Send(from, id, msg)
		}
	}
}
