package consensus

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"socialchain/internal/msp"
	"socialchain/internal/obs"
	"socialchain/internal/sim"
)

// Config assembles a validator.
type Config struct {
	// ID is this validator's name; it must appear in Validators.
	ID string
	// Validators is the ordered membership; the leader of view v is
	// Validators[v mod n] (skipping evicted members).
	Validators []string
	// Signer signs outgoing messages.
	Signer *msp.Signer
	// Identities maps validator IDs to their verification identities.
	Identities map[string]msp.Identity
	// Sender carries messages to peers (*InProcNet in-process, *Bus over a
	// transport wire).
	Sender Sender
	// Inbox delivers inbound messages. Nil is allowed when Sender
	// implements Inboxer (both built-in senders do): the constructor
	// registers this replica's ID and uses the provisioned queue.
	Inbox <-chan *Message
	// Clock drives timeouts (nil = real clock).
	Clock sim.Clock
	// RequestTimeout is how long a pending request may wait before this
	// validator votes for a view change. Zero selects a 2 s default.
	RequestTimeout time.Duration
	// Behavior injects byzantine faults (nil = honest).
	Behavior Behavior
	// Deliver is invoked with each decided payload, in decision order.
	Deliver func(seq uint64, payload []byte)
	// OnEvict is invoked when this validator evicts a peer (may be nil).
	OnEvict func(id string)
	// OverlapWindow > 0 overlaps consensus with execution: decided payloads
	// are handed to a dedicated executor goroutine (still in strict
	// sequence order) and the leader keeps proposing up to OverlapWindow
	// sequences beyond the last decided one, so round N+1's phases run
	// while round N's block commits. 0 — the default — preserves lockstep
	// behaviour exactly: Deliver runs inline in the event loop and
	// proposing is not window-bounded.
	OverlapWindow int
	// VerifyCacheSize bounds this replica's signature verify cache
	// (0 selects msp.DefaultVerifyCacheSize).
	VerifyCacheSize int
	// Obs receives this replica's metrics: decide latency, delivered and
	// view-change counters, backlog depth, verify-cache hit rates. nil
	// leaves the replica fully functional with dangling instruments.
	Obs *obs.Registry
}

type request struct {
	payload  []byte
	arrived  time.Time
	inFlight bool
}

type instance struct {
	view       uint64
	digest     [32]byte
	payload    []byte
	prePrepare []byte // leader-signed pre-prepare, encoded, for evidence
	prepares   map[string]bool
	commits    map[string]bool
	sentCommit bool
	executed   bool
}

// execItem is one decided payload queued for the overlap executor.
type execItem struct {
	seq     uint64
	payload []byte
}

// Validator is one PBFT replica.
type Validator struct {
	cfg  Config
	n, f int

	inbox     <-chan *Message
	proposeCh chan []byte
	stopCh    chan struct{}
	doneCh    chan struct{}
	stopOnce  sync.Once

	// verifyCache memoises signature checks: pre-prepare evidence arrives
	// embedded in every prepare (2f+1 copies per sequence) and NewView
	// proofs repeat view-change votes already verified on arrival.
	verifyCache *msp.VerifyCache

	// execCh feeds the overlap executor (nil in lockstep mode). The event
	// loop is its only sender; Stop closes it after the loop exits and
	// waits for the executor to drain.
	execCh     chan execItem
	execDoneCh chan struct{}

	mu              sync.Mutex
	view            uint64
	nextSeq         uint64
	lastExec        uint64
	insts           map[uint64]*instance
	pending         map[[32]byte]*request
	delivered       map[[32]byte]bool
	evicted         map[string]bool
	vcVotes         map[uint64]map[string][]byte // view -> voter -> encoded VC message
	vcTarget        uint64                       // view we are currently voting for (0 = none)
	vcStarted       time.Time
	future          map[uint64][]*Message // view -> protocol messages deferred until we enter it
	deliveredCount  int
	viewChangeCount int
	proposeDepth    int  // re-entrancy depth of proposePending
	proposeAgain    bool // a nested call wants another proposing round

	// obsDecide times request arrival -> execution (the consensus_decide
	// stage); always non-nil, dangling when Config.Obs is nil.
	obsDecide *obs.Histogram
}

// maxFutureMsgs bounds the per-view buffer of early-arriving protocol
// messages and maxFutureViews bounds how far ahead of the current view a
// message may be to get buffered at all; together they cap the memory a
// byzantine flood of fabricated views can pin.
const (
	maxFutureMsgs  = 4096
	maxFutureViews = 8
)

// NewValidator constructs (but does not start) a replica.
func NewValidator(cfg Config) *Validator {
	if cfg.Clock == nil {
		cfg.Clock = sim.RealClock{}
	}
	if cfg.Behavior == nil {
		cfg.Behavior = Honest{}
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Second
	}
	inbox := cfg.Inbox
	if inbox == nil {
		if ib, ok := cfg.Sender.(Inboxer); ok {
			inbox = ib.Register(cfg.ID)
		}
	}
	n := len(cfg.Validators)
	v := &Validator{
		cfg:         cfg,
		n:           n,
		f:           (n - 1) / 3,
		inbox:       inbox,
		proposeCh:   make(chan []byte, 1024),
		stopCh:      make(chan struct{}),
		doneCh:      make(chan struct{}),
		verifyCache: msp.NewVerifyCache(cfg.VerifyCacheSize),
		nextSeq:     1,
		insts:       make(map[uint64]*instance),
		pending:     make(map[[32]byte]*request),
		delivered:   make(map[[32]byte]bool),
		evicted:     make(map[string]bool),
		vcVotes:     make(map[uint64]map[string][]byte),
		future:      make(map[uint64][]*Message),
	}
	if cfg.OverlapWindow > 0 {
		// The buffer doubles as the execution-backlog bound: once it fills,
		// the event loop blocks on the enqueue (outside mu), throttling
		// consensus to at most OverlapWindow un-executed decisions.
		v.execCh = make(chan execItem, cfg.OverlapWindow)
		v.execDoneCh = make(chan struct{})
	}
	v.obsDecide = cfg.Obs.Histogram("tx_stage_seconds", "Per-stage transaction pipeline latency.", nil,
		obs.L("stage", "consensus_decide"))
	cfg.Obs.CounterFunc("consensus_delivered_total", "Payloads this replica has delivered in decision order.", func() int64 {
		return int64(v.DeliveredCount())
	})
	cfg.Obs.CounterFunc("consensus_view_changes_total", "View changes this replica has completed.", func() int64 {
		return int64(v.ViewChanges())
	})
	cfg.Obs.GaugeFunc("consensus_backlog", "Pending requests plus undrained executor items.", func() float64 {
		return float64(v.Backlog())
	})
	v.verifyCache.Register(cfg.Obs.With(obs.L("component", "consensus")))
	return v
}

// Start launches the replica's event loop (and, in overlap mode, its
// executor).
func (v *Validator) Start() {
	if v.execCh != nil {
		go v.execLoop()
	}
	go v.loop()
}

// Stop terminates the replica and waits for the loop to exit. In overlap
// mode the executor then drains every already-decided payload before Stop
// returns, so no decision is lost. Stop is idempotent.
func (v *Validator) Stop() {
	v.stopOnce.Do(func() {
		close(v.stopCh)
		<-v.doneCh
		if v.execCh != nil {
			close(v.execCh) // the event loop — the only sender — has exited
			<-v.execDoneCh
		}
	})
}

// execLoop runs decided payloads in sequence order, off the event loop.
func (v *Validator) execLoop() {
	defer close(v.execDoneCh)
	for it := range v.execCh {
		v.cfg.Deliver(it.seq, it.payload)
	}
}

// VerifyCacheStats reports the replica's verify-cache hit/miss counters.
func (v *Validator) VerifyCacheStats() (hits, misses int64) {
	return v.verifyCache.Hits(), v.verifyCache.Misses()
}

// Propose submits a payload for total ordering. Any replica may be used as
// the entry point; the request is broadcast to all replicas so a future
// leader can still propose it after a view change.
func (v *Validator) Propose(payload []byte) {
	select {
	case v.proposeCh <- payload:
	case <-v.stopCh:
	}
}

// View returns the replica's current view.
func (v *Validator) View() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.view
}

// LastExecuted returns the highest executed sequence number.
func (v *Validator) LastExecuted() uint64 {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.lastExec
}

// DeliveredCount returns how many payloads this replica has delivered.
func (v *Validator) DeliveredCount() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.deliveredCount
}

// Backlog reports work awaiting this replica's consensus/execution: the
// pending (admitted, not yet decided) request count plus, in overlap mode,
// decided-but-unexecuted items queued on the executor. The /healthz stall
// probe reads it — a backlog that never drains while the chain height
// stands still is a wedged channel.
func (v *Validator) Backlog() int {
	v.mu.Lock()
	n := len(v.pending)
	v.mu.Unlock()
	if v.execCh != nil {
		n += len(v.execCh)
	}
	return n
}

// ViewChanges returns how many view changes this replica has completed.
func (v *Validator) ViewChanges() int {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.viewChangeCount
}

// EvictedPeers returns the sorted ids this replica has evicted.
func (v *Validator) EvictedPeers() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make([]string, 0, len(v.evicted))
	for id := range v.evicted {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// leaderOf returns the leader id of a view, skipping evicted validators.
func (v *Validator) leaderOf(view uint64) string {
	for i := 0; i < v.n; i++ {
		id := v.cfg.Validators[(view+uint64(i))%uint64(v.n)]
		if !v.evicted[id] {
			return id
		}
	}
	return v.cfg.Validators[view%uint64(v.n)]
}

// IsLeader reports whether this replica leads its current view.
func (v *Validator) IsLeader() bool {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.leaderOf(v.view) == v.cfg.ID
}

// quorum is the 2f+1 agreement threshold; with n = 3f+1 this is the
// paper's "at least two-thirds of the peers agree".
func (v *Validator) quorum() int { return 2*v.f + 1 }

// --- messaging ---

// send applies the byzantine filter, then signs and transmits.
func (v *Validator) send(to string, m Message) {
	out := v.cfg.Behavior.OutboundFilter(to, &m)
	if out == nil {
		return
	}
	v.cfg.Sender.Send(v.cfg.ID, to, v.signCopy(out))
}

// signCopy copies out, stamps this replica as origin and signs. The memo
// is invalidated after the copy (the filter may have mutated signed-over
// fields) and repopulated by signing, so the shipped message carries its
// canonical bytes precomputed for the receiver.
func (v *Validator) signCopy(out *Message) *Message {
	cp := *out
	cp.From = v.cfg.ID
	cp.invalidate()
	cp.Signature = v.cfg.Signer.Sign(cp.SigningBytes())
	return &cp
}

// broadcast sends m to every other replica. Ed25519 signing is
// deterministic and From is the same for every recipient, so when the
// behaviour filter passes the message through untouched (the honest case)
// one signature — the expensive step — serves all n-1 sends; every filter
// that alters a message returns a fresh copy, which is signed per
// recipient.
func (v *Validator) broadcast(m Message) {
	var signed *Message
	for _, id := range v.cfg.Validators {
		if id == v.cfg.ID {
			continue
		}
		out := v.cfg.Behavior.OutboundFilter(id, &m)
		if out == nil {
			continue
		}
		if out == &m {
			if signed == nil {
				signed = v.signCopy(out)
			}
			// Recipients treat inbound messages as read-only and the memo
			// was populated before this send, so sharing one copy is safe.
			v.cfg.Sender.Send(v.cfg.ID, id, signed)
			continue
		}
		v.cfg.Sender.Send(v.cfg.ID, id, v.signCopy(out))
	}
}

// selfSigned returns a copy of m signed by this replica, for local
// processing alongside the broadcast.
func (v *Validator) selfSigned(m Message) *Message {
	return v.signCopy(&m)
}

// verify checks the origin signature of an incoming message through the
// verify cache.
func (v *Validator) verify(m *Message) bool {
	id, ok := v.cfg.Identities[m.From]
	if !ok {
		return false
	}
	return v.verifyCache.Verify(id, m.SigningBytes(), m.Signature)
}

// --- event loop ---

func (v *Validator) loop() {
	defer close(v.doneCh)
	tick := v.cfg.RequestTimeout / 4
	if tick <= 0 {
		tick = 50 * time.Millisecond
	}
	timer := v.cfg.Clock.After(tick)
	for {
		select {
		case <-v.stopCh:
			return
		case payload := <-v.proposeCh:
			v.handleRequestPayload(payload, true)
		case m := <-v.inbox:
			v.dispatchBatch(v.drainInbox(m))
		case <-timer:
			v.checkTimeouts()
			timer = v.cfg.Clock.After(tick)
		}
	}
}

// maxInboxDrain caps how many queued messages one loop iteration pulls, so
// a full inbox cannot starve the propose and timeout channels.
const maxInboxDrain = 64

// drainInbox collects the first message plus whatever else is already
// queued, so verification can be amortised across the batch.
func (v *Validator) drainInbox(first *Message) []*Message {
	msgs := []*Message{first}
	for len(msgs) < maxInboxDrain {
		select {
		case m := <-v.inbox:
			msgs = append(msgs, m)
		default:
			return msgs
		}
	}
	return msgs
}

// dispatchBatch verifies a drained batch of messages in one cache-aware
// parallel pass, then handles them in arrival order. Under quorum load a
// validator's inbox holds the same round's votes from every peer; checking
// them together amortises signature cost across cores.
func (v *Validator) dispatchBatch(msgs []*Message) {
	if len(msgs) == 1 {
		v.dispatch(msgs[0])
		return
	}
	items := make([]msp.VerifyItem, 0, len(msgs))
	idx := make([]int, 0, len(msgs))
	verdicts := make([]bool, len(msgs))
	for i, m := range msgs {
		if id, ok := v.cfg.Identities[m.From]; ok {
			items = append(items, msp.VerifyItem{Identity: id, Message: m.SigningBytes(), Signature: m.Signature})
			idx = append(idx, i)
		}
	}
	for j, ok := range v.verifyCache.VerifyBatchEach(items) {
		verdicts[idx[j]] = ok
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	for i, m := range msgs {
		if !verdicts[i] || v.evicted[m.From] {
			continue
		}
		v.handleVerified(m)
	}
}

func (v *Validator) dispatch(m *Message) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if v.evicted[m.From] {
		return
	}
	if !v.verify(m) {
		return
	}
	v.handleVerified(m)
}

// handleVerified routes an authenticated message. Caller holds mu.
func (v *Validator) handleVerified(m *Message) {
	switch m.Type {
	case MsgRequest:
		v.onRequest(m)
	case MsgPrePrepare, MsgPrepare, MsgCommit:
		if m.View > v.view {
			// A replica that already entered a higher view races its NewView
			// announcement against its first pre-prepares/votes; defer the
			// message and replay it once we follow (losing it would force
			// another view change and can livelock the whole group).
			v.deferToView(m)
			return
		}
		switch m.Type {
		case MsgPrePrepare:
			v.onPrePrepare(m)
		case MsgPrepare:
			v.onPrepare(m)
		case MsgCommit:
			v.onCommit(m)
		}
	case MsgViewChange:
		v.onViewChange(m)
	case MsgNewView:
		v.onNewView(m)
	}
}

// deferToView buffers a protocol message from a view ahead of ours. Both
// the view window and the per-view count are bounded, so a byzantine peer
// fabricating ever-higher views cannot grow memory without limit. Caller
// holds mu.
func (v *Validator) deferToView(m *Message) {
	if m.View > v.view+maxFutureViews {
		return // too far ahead to be a plausible in-flight race
	}
	if len(v.future[m.View]) >= maxFutureMsgs {
		return
	}
	v.future[m.View] = append(v.future[m.View], m)
}

// handleRequestPayload admits a client payload (entry replica) and gossips
// it to all replicas.
func (v *Validator) handleRequestPayload(payload []byte, gossip bool) {
	v.mu.Lock()
	digest := DigestOf(payload)
	fresh := v.admitRequest(digest, payload)
	isLeader := v.leaderOf(v.view) == v.cfg.ID
	v.mu.Unlock()

	if gossip && fresh {
		v.broadcast(Message{Type: MsgRequest, Digest: digest, Payload: payload})
	}
	if isLeader {
		v.mu.Lock()
		v.proposePending()
		v.mu.Unlock()
	}
}

// admitRequest records a request if unseen; returns whether it was new.
// Caller holds mu.
func (v *Validator) admitRequest(digest [32]byte, payload []byte) bool {
	if v.delivered[digest] {
		return false
	}
	if _, ok := v.pending[digest]; ok {
		return false
	}
	v.pending[digest] = &request{payload: payload, arrived: v.cfg.Clock.Now()}
	return true
}

func (v *Validator) onRequest(m *Message) {
	if DigestOf(m.Payload) != m.Digest {
		return
	}
	v.admitRequest(m.Digest, m.Payload)
	if v.leaderOf(v.view) == v.cfg.ID {
		v.proposePending()
	}
}

// proposePending assigns sequence numbers to non-in-flight requests and
// broadcasts pre-prepares — all of them in lockstep mode, at most
// OverlapWindow beyond the last decided sequence in overlap mode. Caller
// holds mu. Re-entrant calls (maybeExecute freeing window slots mid-round)
// are flattened into another iteration of the outer loop instead of
// recursing, which keeps stack depth constant on single-replica networks
// where proposing decides immediately.
func (v *Validator) proposePending() {
	if v.proposeDepth > 0 {
		v.proposeAgain = true
		return
	}
	v.proposeDepth++
	defer func() { v.proposeDepth-- }()
	for {
		v.proposeAgain = false
		v.proposeRound()
		if !v.proposeAgain {
			return
		}
	}
}

// proposeRound runs one pass over pending requests. Caller holds mu.
func (v *Validator) proposeRound() {
	digests := make([][32]byte, 0, len(v.pending))
	for d := range v.pending {
		digests = append(digests, d)
	}
	// Deterministic order so re-proposals after a view change agree.
	sort.Slice(digests, func(i, j int) bool {
		for k := range digests[i] {
			if digests[i][k] != digests[j][k] {
				return digests[i][k] < digests[j][k]
			}
		}
		return false
	})
	for _, d := range digests {
		req := v.pending[d]
		if req == nil || req.inFlight {
			// nil: the snapshot entry was decided (and removed) by an
			// earlier iteration's self-quorum execution chain.
			continue
		}
		if v.cfg.OverlapWindow > 0 && v.nextSeq > v.lastExec+uint64(v.cfg.OverlapWindow) {
			return // window full; maybeExecute re-proposes as decisions land
		}
		seq := v.nextSeq
		v.nextSeq++
		req.inFlight = true
		pp := Message{Type: MsgPrePrepare, View: v.view, Seq: seq, Digest: d, Payload: req.payload}
		// Process our own pre-prepare before broadcasting.
		self := v.selfSigned(pp)
		v.onPrePrepare(self)
		v.mu.Unlock()
		v.broadcast(pp)
		v.mu.Lock()
	}
}

func (v *Validator) onPrePrepare(m *Message) {
	if m.From != v.leaderOf(m.View) || m.View != v.view {
		return
	}
	if DigestOf(m.Payload) != m.Digest {
		return
	}
	inst, ok := v.insts[m.Seq]
	if ok && inst.view == m.View {
		if inst.digest != m.Digest && len(inst.prePrepare) > 0 {
			// The leader signed two different pre-prepares for the same
			// (view, seq): conclusive equivocation.
			v.evict(m.From)
			return
		}
	} else {
		inst = v.newInstance(m.View, m.Seq, m.Digest, m.Payload)
		v.insts[m.Seq] = inst
	}
	if len(inst.prePrepare) == 0 {
		if inst.digest != m.Digest {
			// The shell was created from early votes for a different digest;
			// those votes must not count toward this instance's quorum.
			inst.prepares = make(map[string]bool)
			inst.commits = make(map[string]bool)
		}
		inst.prePrepare = m.Encode()
		inst.payload = m.Payload
		inst.digest = m.Digest
		// The leader's pre-prepare counts as its prepare vote.
		inst.prepares[m.From] = true
	}
	// Send our prepare, carrying the leader-signed pre-prepare as evidence.
	prep := Message{Type: MsgPrepare, View: m.View, Seq: m.Seq, Digest: m.Digest, PrePrepareEvidence: inst.prePrepare}
	self := v.selfSigned(prep)
	v.applyPrepare(self)
	v.mu.Unlock()
	v.broadcast(prep)
	v.mu.Lock()
	v.maybeCommitPhase(m.Seq)
}

func (v *Validator) newInstance(view, seq uint64, digest [32]byte, payload []byte) *instance {
	return &instance{
		view:     view,
		digest:   digest,
		payload:  payload,
		prepares: make(map[string]bool),
		commits:  make(map[string]bool),
	}
}

func (v *Validator) onPrepare(m *Message) {
	if m.View != v.view {
		return
	}
	v.checkEquivocationEvidence(m)
	v.applyPrepare(m)
	v.maybeCommitPhase(m.Seq)
}

// applyPrepare counts a prepare vote. Caller holds mu.
func (v *Validator) applyPrepare(m *Message) {
	inst, ok := v.insts[m.Seq]
	if !ok {
		// Prepare arrived before the pre-prepare; create a shell the
		// pre-prepare will fill.
		inst = v.newInstance(m.View, m.Seq, m.Digest, nil)
		v.insts[m.Seq] = inst
	}
	if inst.digest == m.Digest {
		inst.prepares[m.From] = true
	}
}

// checkEquivocationEvidence inspects the embedded pre-prepare for conflict
// with what we received from the leader. Caller holds mu.
func (v *Validator) checkEquivocationEvidence(m *Message) {
	if len(m.PrePrepareEvidence) == 0 {
		return
	}
	pp, err := DecodeMessage(m.PrePrepareEvidence)
	if err != nil || pp.Type != MsgPrePrepare {
		return
	}
	leader := pp.From
	id, ok := v.cfg.Identities[leader]
	// Cached: the same leader-signed evidence arrives embedded in every
	// replica's prepare, so only the first of 2f+1 copies pays the verify.
	if !ok || !v.verifyCache.Verify(id, pp.SigningBytes(), pp.Signature) {
		return
	}
	inst, ok := v.insts[pp.Seq]
	if !ok || inst.view != pp.View || len(inst.prePrepare) == 0 {
		return
	}
	local, err := DecodeMessage(inst.prePrepare)
	if err != nil || local.From != leader {
		return
	}
	if local.Digest != pp.Digest {
		// Two validly signed pre-prepares from the same leader for the same
		// (view, seq) with different digests.
		v.evict(leader)
	}
}

// maybeCommitPhase advances an instance to the commit phase once 2f+1
// prepare votes (including the leader's pre-prepare) match. Caller holds mu.
func (v *Validator) maybeCommitPhase(seq uint64) {
	inst, ok := v.insts[seq]
	if !ok || inst.sentCommit || len(inst.prePrepare) == 0 {
		return
	}
	if len(inst.prepares) < v.quorum() {
		return
	}
	inst.sentCommit = true
	cm := Message{Type: MsgCommit, View: inst.view, Seq: seq, Digest: inst.digest}
	self := v.selfSigned(cm)
	inst.commits[self.From] = true
	v.mu.Unlock()
	v.broadcast(cm)
	v.mu.Lock()
	v.maybeExecute()
}

func (v *Validator) onCommit(m *Message) {
	if m.View != v.view {
		return
	}
	inst, ok := v.insts[m.Seq]
	if !ok {
		inst = v.newInstance(m.View, m.Seq, m.Digest, nil)
		v.insts[m.Seq] = inst
	}
	if inst.digest == m.Digest {
		inst.commits[m.From] = true
	}
	v.maybeExecute()
}

// maybeExecute delivers committed instances in sequence order. In lockstep
// mode the payload executes inline; in overlap mode it is queued on the
// executor so the event loop returns to processing the next round's
// messages while the block commits. Caller holds mu.
func (v *Validator) maybeExecute() {
	advanced := false
	for {
		inst, ok := v.insts[v.lastExec+1]
		if !ok || inst.executed || inst.payload == nil {
			break
		}
		if len(inst.commits) < v.quorum() || !inst.sentCommit {
			break
		}
		inst.executed = true
		v.lastExec++
		advanced = true
		digest := inst.digest
		payload := inst.payload
		if req := v.pending[digest]; req != nil {
			v.obsDecide.Observe(v.cfg.Clock.Now().Sub(req.arrived))
		}
		delete(v.pending, digest)
		already := v.delivered[digest]
		v.delivered[digest] = true
		if v.nextSeq <= v.lastExec {
			v.nextSeq = v.lastExec + 1
		}
		if !already && v.cfg.Deliver != nil {
			v.deliveredCount++
			seq := v.lastExec
			v.mu.Unlock()
			if v.execCh != nil {
				// Blocks only when OverlapWindow decisions are already
				// queued — the bounded in-flight window's backpressure.
				select {
				case v.execCh <- execItem{seq: seq, payload: payload}:
				case <-v.stopCh:
				}
			} else {
				v.cfg.Deliver(seq, payload)
			}
			v.mu.Lock()
		}
		if v.lastExec > 64 {
			delete(v.insts, v.lastExec-64) // prune old instances
		}
	}
	// Decisions freed window slots; a leader with window-deferred requests
	// can propose again.
	if advanced && v.cfg.OverlapWindow > 0 && v.leaderOf(v.view) == v.cfg.ID {
		v.proposePending()
	}
}

// --- view change ---

func (v *Validator) checkTimeouts() {
	v.mu.Lock()
	defer v.mu.Unlock()
	now := v.cfg.Clock.Now()
	// Escalate an in-progress view change that itself timed out.
	if v.vcTarget > v.view && now.Sub(v.vcStarted) > v.cfg.RequestTimeout {
		v.voteViewChange(v.vcTarget + 1)
		return
	}
	if v.vcTarget > v.view {
		return // view change in progress
	}
	for _, req := range v.pending {
		if now.Sub(req.arrived) > v.cfg.RequestTimeout {
			v.voteViewChange(v.view + 1)
			return
		}
	}
}

// voteViewChange broadcasts a view-change vote for the target view. Caller
// holds mu.
func (v *Validator) voteViewChange(target uint64) {
	if target <= v.view {
		return
	}
	v.vcTarget = target
	v.vcStarted = v.cfg.Clock.Now()
	vc := Message{Type: MsgViewChange, View: target, Seq: v.lastExec}
	self := v.selfSigned(vc)
	v.recordViewChangeVote(self)
	v.mu.Unlock()
	v.broadcast(vc)
	v.mu.Lock()
	v.maybeNewView(target)
}

func (v *Validator) onViewChange(m *Message) {
	if m.View <= v.view {
		return
	}
	v.recordViewChangeVote(m)
	// Join the view change once f+1 peers vote for a higher view: at least
	// one honest replica observed a failure.
	if len(v.vcVotes[m.View]) > v.f && v.vcTarget < m.View {
		v.voteViewChange(m.View)
		return
	}
	v.maybeNewView(m.View)
}

// recordViewChangeVote stores an encoded, signed vote. Caller holds mu.
func (v *Validator) recordViewChangeVote(m *Message) {
	votes, ok := v.vcVotes[m.View]
	if !ok {
		votes = make(map[string][]byte)
		v.vcVotes[m.View] = votes
	}
	votes[m.From] = m.Encode()
}

// maybeNewView lets the leader of the target view announce it once 2f+1
// votes are collected. Caller holds mu.
func (v *Validator) maybeNewView(target uint64) {
	if v.leaderOf(target) != v.cfg.ID || target <= v.view {
		return
	}
	votes := v.vcVotes[target]
	if len(votes) < v.quorum() {
		return
	}
	// Determine the new starting sequence from the votes.
	maxExec := v.lastExec
	proofs := make([][]byte, 0, len(votes))
	for _, enc := range votes {
		proofs = append(proofs, enc)
		if vm, err := DecodeMessage(enc); err == nil && vm.Seq > maxExec {
			maxExec = vm.Seq
		}
	}
	nv := Message{Type: MsgNewView, View: target, Seq: maxExec + 1, Proofs: proofs}
	v.enterView(target, maxExec+1)
	v.mu.Unlock()
	v.broadcast(nv)
	v.mu.Lock()
	v.proposePending()
}

func (v *Validator) onNewView(m *Message) {
	if m.View <= v.view || m.From != v.leaderOf(m.View) {
		return
	}
	// Verify 2f+1 distinct, validly signed view-change votes for this view.
	voters := make(map[string]bool)
	for _, enc := range m.Proofs {
		vm, err := DecodeMessage(enc)
		if err != nil || vm.Type != MsgViewChange || vm.View != m.View {
			continue
		}
		id, ok := v.cfg.Identities[vm.From]
		// Cached: each proof is a view-change vote this replica usually
		// verified already when it arrived directly.
		if !ok || v.evicted[vm.From] || !v.verifyCache.Verify(id, vm.SigningBytes(), vm.Signature) {
			continue
		}
		voters[vm.From] = true
	}
	if len(voters) < v.quorum() {
		return
	}
	v.enterView(m.View, m.Seq)
}

// enterView installs a new view. Caller holds mu.
func (v *Validator) enterView(view, startSeq uint64) {
	v.view = view
	v.viewChangeCount++
	v.vcTarget = 0
	// Discard unexecuted instances; their requests go back to pending.
	for seq, inst := range v.insts {
		if !inst.executed {
			delete(v.insts, seq)
			if inst.payload != nil && !v.delivered[inst.digest] {
				if req, ok := v.pending[inst.digest]; ok {
					req.inFlight = false
				} else {
					v.pending[inst.digest] = &request{payload: inst.payload, arrived: v.cfg.Clock.Now()}
				}
			}
		}
	}
	if startSeq > v.lastExec+1 {
		v.lastExec = startSeq - 1
	}
	// Restart proposals right after the agreed start: unexecuted instances
	// were discarded above, so their sequence numbers are reusable in this
	// view. Only ever raising nextSeq (as earlier revisions did) leaves
	// permanent gaps below new proposals, which maybeExecute can never cross.
	v.nextSeq = startSeq
	if v.nextSeq <= v.lastExec {
		v.nextSeq = v.lastExec + 1
	}
	// Give the new leader a fresh timeout for every pending request.
	now := v.cfg.Clock.Now()
	for _, req := range v.pending {
		req.arrived = now
		req.inFlight = false
	}
	delete(v.vcVotes, view)
	// Replay protocol messages that arrived for this view before we entered
	// it, and drop buffers for views now behind us.
	replay := v.future[view]
	for fv := range v.future {
		if fv <= view {
			delete(v.future, fv)
		}
	}
	for _, m := range replay {
		if v.view != view {
			break // a replayed message moved us onward; the rest are stale
		}
		if v.evicted[m.From] {
			continue // evicted after buffering; votes no longer count
		}
		switch m.Type {
		case MsgPrePrepare:
			v.onPrePrepare(m)
		case MsgPrepare:
			v.onPrepare(m)
		case MsgCommit:
			v.onCommit(m)
		}
	}
}

// evict flags a peer as byzantine and removes it from the effective
// validator pool, as the paper prescribes for validators that act against
// the consensus rules. Caller holds mu.
func (v *Validator) evict(id string) {
	if v.evicted[id] || id == v.cfg.ID {
		return
	}
	v.evicted[id] = true
	if v.cfg.OnEvict != nil {
		cb := v.cfg.OnEvict
		v.mu.Unlock()
		cb(id)
		v.mu.Lock()
	}
	// If the evicted peer leads the current view, move past it.
	if v.cfg.Validators[v.view%uint64(v.n)] == id || v.leaderOf(v.view) == id {
		v.voteViewChange(v.view + 1)
	}
}

// String describes the replica for logs.
func (v *Validator) String() string {
	return fmt.Sprintf("validator(%s view=%d exec=%d)", v.cfg.ID, v.View(), v.LastExecuted())
}
