package consensus

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"socialchain/internal/msp"
)

// harness spins up n validators with per-validator behaviours and a shared
// delivery log.
type harness struct {
	t          *testing.T
	net        *InProcNet
	validators []*Validator
	mu         sync.Mutex
	delivered  map[string][]string // validator id -> payloads in order
	evictions  map[string][]string
}

func newHarness(t *testing.T, n int, behaviors map[int]Behavior, timeout time.Duration) *harness {
	t.Helper()
	h := &harness{
		t:         t,
		net:       NewInProcNet(nil, nil),
		delivered: make(map[string][]string),
		evictions: make(map[string][]string),
	}
	ids := make([]string, n)
	signers := make([]*msp.Signer, n)
	idents := make(map[string]msp.Identity, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("v%d", i)
		s, err := msp.NewSigner("org", ids[i], msp.RoleMember)
		if err != nil {
			t.Fatalf("signer: %v", err)
		}
		signers[i] = s
		idents[ids[i]] = s.Identity
	}
	for i := 0; i < n; i++ {
		id := ids[i]
		b := behaviors[i]
		v := NewValidator(Config{
			ID:             id,
			Validators:     ids,
			Signer:         signers[i],
			Identities:     idents,
			Sender:         h.net,
			RequestTimeout: timeout,
			Behavior:       b,
			Deliver: func(seq uint64, payload []byte) {
				h.mu.Lock()
				h.delivered[id] = append(h.delivered[id], string(payload))
				h.mu.Unlock()
			},
			OnEvict: func(peer string) {
				h.mu.Lock()
				h.evictions[id] = append(h.evictions[id], peer)
				h.mu.Unlock()
			},
		})
		h.validators = append(h.validators, v)
	}
	for _, v := range h.validators {
		v.Start()
	}
	t.Cleanup(func() {
		for _, v := range h.validators {
			v.Stop()
		}
	})
	return h
}

func (h *harness) deliveredAt(i int) []string {
	h.mu.Lock()
	defer h.mu.Unlock()
	return append([]string(nil), h.delivered[fmt.Sprintf("v%d", i)]...)
}

// waitDelivered waits until validator i has delivered want payloads.
func (h *harness) waitDelivered(i, want int, timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if len(h.deliveredAt(i)) >= want {
			return true
		}
		time.Sleep(5 * time.Millisecond)
	}
	return false
}

func TestSingleDecisionAllHonest(t *testing.T) {
	h := newHarness(t, 4, nil, time.Second)
	h.validators[0].Propose([]byte("tx-1"))
	for i := 0; i < 4; i++ {
		if !h.waitDelivered(i, 1, 3*time.Second) {
			t.Fatalf("validator %d did not deliver", i)
		}
	}
	for i := 0; i < 4; i++ {
		got := h.deliveredAt(i)
		if len(got) != 1 || got[0] != "tx-1" {
			t.Fatalf("validator %d delivered %v", i, got)
		}
	}
}

func TestSequentialDecisionsSameOrder(t *testing.T) {
	h := newHarness(t, 4, nil, time.Second)
	const numTx = 20
	for k := 0; k < numTx; k++ {
		h.validators[k%4].Propose([]byte(fmt.Sprintf("tx-%02d", k)))
	}
	for i := 0; i < 4; i++ {
		if !h.waitDelivered(i, numTx, 10*time.Second) {
			t.Fatalf("validator %d delivered only %d/%d", i, len(h.deliveredAt(i)), numTx)
		}
	}
	ref := h.deliveredAt(0)
	for i := 1; i < 4; i++ {
		got := h.deliveredAt(i)
		if len(got) != len(ref) {
			t.Fatalf("validator %d delivered %d payloads, want %d", i, len(got), len(ref))
		}
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("validator %d order diverges at %d: %q vs %q", i, j, got[j], ref[j])
			}
		}
	}
	// All proposals must appear exactly once.
	seen := make(map[string]int)
	for _, p := range ref {
		seen[p]++
	}
	if len(seen) != numTx {
		t.Fatalf("expected %d distinct payloads, got %d", numTx, len(seen))
	}
	for p, c := range seen {
		if c != 1 {
			t.Fatalf("payload %q delivered %d times", p, c)
		}
	}
}

func TestToleratesSilentFollower(t *testing.T) {
	// n=4 tolerates f=1 silent non-leader.
	h := newHarness(t, 4, map[int]Behavior{2: Silent{}}, time.Second)
	h.validators[0].Propose([]byte("tx-silent"))
	for _, i := range []int{0, 1, 3} {
		if !h.waitDelivered(i, 1, 3*time.Second) {
			t.Fatalf("validator %d did not deliver with one silent follower", i)
		}
	}
}

func TestViewChangeOnSilentLeader(t *testing.T) {
	// v0 leads view 0 and is silent; the request must still commit after a
	// view change to v1.
	h := newHarness(t, 4, map[int]Behavior{0: Silent{}}, 300*time.Millisecond)
	h.validators[1].Propose([]byte("tx-vc"))
	for _, i := range []int{1, 2, 3} {
		if !h.waitDelivered(i, 1, 10*time.Second) {
			t.Fatalf("validator %d did not deliver after view change", i)
		}
	}
	if v := h.validators[1].View(); v == 0 {
		t.Fatalf("expected view change, still in view 0")
	}
}

func TestEquivocatingLeaderEvicted(t *testing.T) {
	// v0 equivocates: half the replicas get one payload, half another.
	h := newHarness(t, 4, map[int]Behavior{0: &Equivocator{Half: map[string]bool{"v1": true}}}, 300*time.Millisecond)
	h.validators[0].Propose([]byte("tx-equiv"))
	deadline := time.Now().Add(10 * time.Second)
	evicted := false
	for time.Now().Before(deadline) && !evicted {
		h.mu.Lock()
		for _, evs := range h.evictions {
			for _, e := range evs {
				if e == "v0" {
					evicted = true
				}
			}
		}
		h.mu.Unlock()
		time.Sleep(10 * time.Millisecond)
	}
	if !evicted {
		t.Fatal("equivocating leader was never evicted")
	}
	// The request should still be delivered by the remaining replicas after
	// the view change.
	for _, i := range []int{1, 2, 3} {
		if !h.waitDelivered(i, 1, 10*time.Second) {
			t.Fatalf("validator %d did not deliver after eviction", i)
		}
	}
}

func TestWrongDigestVoterDoesNotBlock(t *testing.T) {
	h := newHarness(t, 4, map[int]Behavior{3: WrongDigest{}}, time.Second)
	h.validators[0].Propose([]byte("tx-baddigest"))
	for _, i := range []int{0, 1, 2} {
		if !h.waitDelivered(i, 1, 5*time.Second) {
			t.Fatalf("validator %d did not deliver with a wrong-digest voter", i)
		}
	}
}

func TestSevenValidatorsTwoSilent(t *testing.T) {
	// n=7 tolerates f=2.
	h := newHarness(t, 7, map[int]Behavior{3: Silent{}, 5: Silent{}}, time.Second)
	for k := 0; k < 5; k++ {
		h.validators[0].Propose([]byte(fmt.Sprintf("tx-%d", k)))
	}
	for _, i := range []int{0, 1, 2, 4, 6} {
		if !h.waitDelivered(i, 5, 10*time.Second) {
			t.Fatalf("validator %d delivered %d/5", i, len(h.deliveredAt(i)))
		}
	}
}

func TestDuplicateProposalDeliveredOnce(t *testing.T) {
	h := newHarness(t, 4, nil, time.Second)
	h.validators[0].Propose([]byte("tx-dup"))
	h.validators[1].Propose([]byte("tx-dup"))
	if !h.waitDelivered(0, 1, 3*time.Second) {
		t.Fatal("no delivery")
	}
	// Give a duplicate a chance to (incorrectly) appear.
	time.Sleep(300 * time.Millisecond)
	if got := h.deliveredAt(0); len(got) != 1 {
		t.Fatalf("duplicate proposal delivered %d times", len(got))
	}
}

func TestLeaderOfSkipsEvicted(t *testing.T) {
	h := newHarness(t, 4, nil, time.Second)
	v := h.validators[1]
	v.mu.Lock()
	v.evicted["v0"] = true
	leader := v.leaderOf(0)
	v.mu.Unlock()
	if leader != "v1" {
		t.Fatalf("leaderOf(0) with v0 evicted = %s, want v1", leader)
	}
}

func TestQuorumSizes(t *testing.T) {
	cases := []struct{ n, want int }{{4, 3}, {7, 5}, {10, 7}, {13, 9}}
	for _, c := range cases {
		h := newHarness(t, c.n, nil, time.Second)
		if got := h.validators[0].quorum(); got != c.want {
			t.Errorf("n=%d quorum=%d want %d", c.n, got, c.want)
		}
	}
}
