package consensus

import (
	"fmt"
	"testing"
	"time"

	"socialchain/internal/msp"
)

// newHarnessCfg is newHarness with a hook to adjust each validator's Config
// (overlap window, verify-cache size) before construction.
func newHarnessCfg(t *testing.T, n int, behaviors map[int]Behavior, timeout time.Duration, tweak func(*Config)) *harness {
	t.Helper()
	h := &harness{
		t:         t,
		net:       NewInProcNet(nil, nil),
		delivered: make(map[string][]string),
		evictions: make(map[string][]string),
	}
	ids := make([]string, n)
	signers := make([]*msp.Signer, n)
	idents := make(map[string]msp.Identity, n)
	for i := 0; i < n; i++ {
		ids[i] = fmt.Sprintf("v%d", i)
		s, err := msp.NewSigner("org", ids[i], msp.RoleMember)
		if err != nil {
			t.Fatalf("signer: %v", err)
		}
		signers[i] = s
		idents[ids[i]] = s.Identity
	}
	for i := 0; i < n; i++ {
		id := ids[i]
		cfg := Config{
			ID:             id,
			Validators:     ids,
			Signer:         signers[i],
			Identities:     idents,
			Sender:         h.net,
			RequestTimeout: timeout,
			Behavior:       behaviors[i],
			Deliver: func(seq uint64, payload []byte) {
				h.mu.Lock()
				h.delivered[id] = append(h.delivered[id], string(payload))
				h.mu.Unlock()
			},
			OnEvict: func(peer string) {
				h.mu.Lock()
				h.evictions[id] = append(h.evictions[id], peer)
				h.mu.Unlock()
			},
		}
		if tweak != nil {
			tweak(&cfg)
		}
		h.validators = append(h.validators, NewValidator(cfg))
	}
	for _, v := range h.validators {
		v.Start()
	}
	t.Cleanup(func() {
		for _, v := range h.validators {
			v.Stop()
		}
	})
	return h
}

// TestOverlapDeliversSameTotalOrder runs a 30-proposal load with the
// overlap window enabled and checks the safety property overlap must
// preserve: every validator delivers the same payloads, in the same
// order, exactly once — identical guarantees to lockstep mode.
func TestOverlapDeliversSameTotalOrder(t *testing.T) {
	h := newHarnessCfg(t, 4, nil, time.Second, func(c *Config) {
		c.OverlapWindow = 4
	})
	const numTx = 30
	for k := 0; k < numTx; k++ {
		h.validators[k%4].Propose([]byte(fmt.Sprintf("tx-%02d", k)))
	}
	for i := 0; i < 4; i++ {
		if !h.waitDelivered(i, numTx, 15*time.Second) {
			t.Fatalf("validator %d delivered only %d/%d with overlap", i, len(h.deliveredAt(i)), numTx)
		}
	}
	ref := h.deliveredAt(0)
	for i := 1; i < 4; i++ {
		got := h.deliveredAt(i)
		if len(got) != len(ref) {
			t.Fatalf("validator %d delivered %d payloads, want %d", i, len(got), len(ref))
		}
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("validator %d order diverges at %d: %q vs %q", i, j, got[j], ref[j])
			}
		}
	}
	seen := make(map[string]int)
	for _, p := range ref {
		seen[p]++
	}
	if len(seen) != numTx {
		t.Fatalf("expected %d distinct payloads, got %d", numTx, len(seen))
	}
	for p, c := range seen {
		if c != 1 {
			t.Fatalf("payload %q delivered %d times", p, c)
		}
	}
}

// TestOverlapSingleLeaderBurst drives the pipelining case directly: one
// leader proposes a burst, so with a window of 4 the leader pre-prepares
// seq N+1 while N is still in prepare/commit. All payloads must land in
// submission order on every replica.
func TestOverlapSingleLeaderBurst(t *testing.T) {
	h := newHarnessCfg(t, 4, nil, time.Second, func(c *Config) {
		c.OverlapWindow = 4
	})
	const numTx = 16
	for k := 0; k < numTx; k++ {
		h.validators[0].Propose([]byte(fmt.Sprintf("burst-%02d", k)))
	}
	for i := 0; i < 4; i++ {
		if !h.waitDelivered(i, numTx, 15*time.Second) {
			t.Fatalf("validator %d delivered only %d/%d", i, len(h.deliveredAt(i)), numTx)
		}
	}
	// Pending requests sit in a map, so sequence assignment is not
	// submission order (same as lockstep); the guarantee is agreement:
	// every replica delivers the leader's order, each payload exactly once.
	ref := h.deliveredAt(0)
	seen := make(map[string]int)
	for _, p := range ref {
		seen[p]++
	}
	for j := 0; j < numTx; j++ {
		if seen[fmt.Sprintf("burst-%02d", j)] != 1 {
			t.Fatalf("burst-%02d delivered %d times at leader", j, seen[fmt.Sprintf("burst-%02d", j)])
		}
	}
	for i := 1; i < 4; i++ {
		got := h.deliveredAt(i)
		for j := range ref {
			if got[j] != ref[j] {
				t.Fatalf("validator %d slot %d = %q, leader has %q", i, j, got[j], ref[j])
			}
		}
	}
}

// TestOverlapStopDrainsExecutor checks Stop does not drop payloads the
// event loop already handed to the async executor.
func TestOverlapStopDrainsExecutor(t *testing.T) {
	h := newHarnessCfg(t, 4, nil, time.Second, func(c *Config) {
		c.OverlapWindow = 8
	})
	const numTx = 10
	for k := 0; k < numTx; k++ {
		h.validators[0].Propose([]byte(fmt.Sprintf("drain-%02d", k)))
	}
	if !h.waitDelivered(0, numTx, 15*time.Second) {
		t.Fatalf("leader delivered only %d/%d", len(h.deliveredAt(0)), numTx)
	}
	// Stop everything now; the t.Cleanup stop must then be a no-op and no
	// delivery may be lost or duplicated.
	for _, v := range h.validators {
		v.Stop()
	}
	got := h.deliveredAt(0)
	if len(got) != numTx {
		t.Fatalf("after Stop: %d payloads, want %d", len(got), numTx)
	}
}

// TestEquivocatorEvictedWithCacheEnabled re-runs the byzantine-equivocator
// scenario with the verify cache explicitly sized and enabled, proving
// cached verdicts do not mask equivocation evidence: the conflicting
// pre-prepares verify (they are validly signed — the fault is semantic,
// two payloads for one sequence) and the leader is still evicted.
func TestEquivocatorEvictedWithCacheEnabled(t *testing.T) {
	h := newHarnessCfg(t, 4,
		map[int]Behavior{0: &Equivocator{Half: map[string]bool{"v1": true}}},
		300*time.Millisecond,
		func(c *Config) {
			c.VerifyCacheSize = 1024
			c.OverlapWindow = 2
		})
	h.validators[0].Propose([]byte("tx-equiv-cached"))
	deadline := time.Now().Add(10 * time.Second)
	evicted := false
	for time.Now().Before(deadline) && !evicted {
		h.mu.Lock()
		for _, evs := range h.evictions {
			for _, e := range evs {
				if e == "v0" {
					evicted = true
				}
			}
		}
		h.mu.Unlock()
		time.Sleep(10 * time.Millisecond)
	}
	if !evicted {
		t.Fatal("equivocating leader was never evicted with verify cache enabled")
	}
	for _, i := range []int{1, 2, 3} {
		if !h.waitDelivered(i, 1, 10*time.Second) {
			t.Fatalf("validator %d did not deliver after cached eviction", i)
		}
	}
	// The cache must have been exercised: every replica verified messages
	// through it, and the evidence re-verification path produces hits.
	var hits, misses int64
	for _, i := range []int{1, 2, 3} {
		hi, mi := h.validators[i].VerifyCacheStats()
		hits += hi
		misses += mi
	}
	if misses == 0 {
		t.Fatal("verify cache never consulted")
	}
	if hits == 0 {
		t.Fatal("equivocation evidence re-verification produced no cache hits")
	}
}

// TestOverlapWindowBoundsInFlight checks the window actually bounds the
// leader: with window=1 behaviour degenerates to strict lockstep and the
// full burst still completes.
func TestOverlapWindowBoundsInFlight(t *testing.T) {
	h := newHarnessCfg(t, 4, nil, time.Second, func(c *Config) {
		c.OverlapWindow = 1
	})
	const numTx = 8
	for k := 0; k < numTx; k++ {
		h.validators[0].Propose([]byte(fmt.Sprintf("w1-%02d", k)))
	}
	for i := 0; i < 4; i++ {
		if !h.waitDelivered(i, numTx, 15*time.Second) {
			t.Fatalf("validator %d delivered only %d/%d with window=1", i, len(h.deliveredAt(i)), numTx)
		}
	}
}
