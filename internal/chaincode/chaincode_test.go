package chaincode

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"socialchain/internal/msp"
	"socialchain/internal/statedb"
)

func testCtx(t *testing.T) TxContext {
	t.Helper()
	s, err := msp.NewSigner("org", "client", msp.RoleMember)
	if err != nil {
		t.Fatal(err)
	}
	return TxContext{TxID: "tx-1", ChannelID: "ch", Creator: s.Identity, Timestamp: time.Unix(1000, 0)}
}

func seededDB(t *testing.T) (*statedb.DB, *statedb.HistoryDB) {
	t.Helper()
	db := statedb.New()
	h := statedb.NewHistoryDB()
	b := statedb.NewUpdateBatch()
	b.Put("cc", "existing", []byte("old"))
	b.Put("cc", "scan/a", []byte("1"))
	b.Put("cc", "scan/b", []byte("2"))
	db.ApplyUpdates(b, statedb.Version{BlockNum: 1, TxNum: 0})
	h.RecordBatch(b, "genesis-tx", statedb.Version{BlockNum: 1}, time.Unix(500, 0))
	return db, h
}

func TestGetStateRecordsRead(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h)
	v, err := sim.GetState("existing")
	if err != nil {
		t.Fatal(err)
	}
	if string(v) != "old" {
		t.Fatalf("value %q", v)
	}
	rw := sim.RWSet()
	if len(rw.Reads) != 1 || rw.Reads[0].Key != "existing" || !rw.Reads[0].Exists {
		t.Fatalf("reads = %+v", rw.Reads)
	}
	if rw.Reads[0].Version != (statedb.Version{BlockNum: 1, TxNum: 0}) {
		t.Fatalf("read version = %v", rw.Reads[0].Version)
	}
}

func TestGetStateAbsentRecordsNonExistence(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h)
	v, err := sim.GetState("ghost")
	if err != nil || v != nil {
		t.Fatalf("v=%v err=%v", v, err)
	}
	rw := sim.RWSet()
	if len(rw.Reads) != 1 || rw.Reads[0].Exists {
		t.Fatalf("reads = %+v", rw.Reads)
	}
}

func TestReadYourOwnWrites(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h)
	if err := sim.PutState("k", []byte("new")); err != nil {
		t.Fatal(err)
	}
	v, err := sim.GetState("k")
	if err != nil || string(v) != "new" {
		t.Fatalf("own write invisible: %q %v", v, err)
	}
	// Reading an own write must NOT add a read record (no version to check).
	rw := sim.RWSet()
	if len(rw.Reads) != 0 {
		t.Fatalf("reads = %+v", rw.Reads)
	}
	if len(rw.Writes) != 1 {
		t.Fatalf("writes = %+v", rw.Writes)
	}
}

func TestDeleteVisibleInSimulation(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h)
	if err := sim.DelState("existing"); err != nil {
		t.Fatal(err)
	}
	v, err := sim.GetState("existing")
	if err != nil || v != nil {
		t.Fatalf("deleted key visible: %q", v)
	}
	rw := sim.RWSet()
	if len(rw.Writes) != 1 || !rw.Writes[0].IsDelete {
		t.Fatalf("writes = %+v", rw.Writes)
	}
}

func TestEmptyKeyRejected(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h)
	if err := sim.PutState("", []byte("v")); err == nil {
		t.Fatal("empty key accepted")
	}
	if err := sim.DelState(""); err == nil {
		t.Fatal("empty key delete accepted")
	}
}

func TestRangeMergesPendingWrites(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h)
	if err := sim.PutState("scan/c", []byte("3")); err != nil {
		t.Fatal(err)
	}
	if err := sim.DelState("scan/a"); err != nil {
		t.Fatal(err)
	}
	if err := sim.PutState("scan/b", []byte("2-updated")); err != nil {
		t.Fatal(err)
	}
	kvs, err := sim.GetStateByRange("scan/", "scan/\xff")
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 {
		t.Fatalf("merged scan = %+v", kvs)
	}
	if kvs[0].Key != "scan/b" || string(kvs[0].Value) != "2-updated" {
		t.Fatalf("kvs[0] = %+v", kvs[0])
	}
	if kvs[1].Key != "scan/c" || string(kvs[1].Value) != "3" {
		t.Fatalf("kvs[1] = %+v", kvs[1])
	}
}

func TestCompositeKeys(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h)
	key, err := sim.CreateCompositeKey("label~txid", []string{"truck", "tx9"})
	if err != nil {
		t.Fatal(err)
	}
	obj, attrs, err := sim.SplitCompositeKey(key)
	if err != nil {
		t.Fatal(err)
	}
	if obj != "label~txid" || len(attrs) != 2 || attrs[0] != "truck" || attrs[1] != "tx9" {
		t.Fatalf("split = %q %v", obj, attrs)
	}
}

func TestCompositeKeyRejectsSeparator(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h)
	if _, err := sim.CreateCompositeKey("bad\x00type", nil); err == nil {
		t.Fatal("separator in object type accepted")
	}
	if _, err := sim.CreateCompositeKey("t", []string{"a\x00b"}); err == nil {
		t.Fatal("separator in attribute accepted")
	}
	if _, _, err := sim.SplitCompositeKey("plainkey"); err == nil {
		t.Fatal("non-composite key split accepted")
	}
}

func TestPartialCompositeKeyScan(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h)
	for _, attrs := range [][]string{{"truck", "tx1"}, {"truck", "tx2"}, {"car", "tx3"}} {
		key, err := sim.CreateCompositeKey("label~txid", attrs)
		if err != nil {
			t.Fatal(err)
		}
		if err := sim.PutState(key, []byte{0}); err != nil {
			t.Fatal(err)
		}
	}
	kvs, err := sim.GetStateByPartialCompositeKey("label~txid", []string{"truck"})
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 2 {
		t.Fatalf("partial scan = %d entries", len(kvs))
	}
	// "tr" must not match "truck" (whole-attribute matching).
	kvs, err = sim.GetStateByPartialCompositeKey("label~txid", []string{"tr"})
	if err != nil {
		t.Fatal(err)
	}
	if len(kvs) != 0 {
		t.Fatalf("prefix attribute matched %d entries", len(kvs))
	}
}

func TestHistoryThroughStub(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h)
	hist, err := sim.GetHistoryForKey("existing")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 1 || hist[0].TxID != "genesis-tx" {
		t.Fatalf("history = %+v", hist)
	}
	simNoHist := NewSimulator(testCtx(t), "cc", db, nil)
	if _, err := simNoHist.GetHistoryForKey("existing"); err == nil {
		t.Fatal("nil history db accepted")
	}
}

func TestEvents(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h)
	if err := sim.SetEvent("", nil); err == nil {
		t.Fatal("empty event name accepted")
	}
	if err := sim.SetEvent("created", []byte("p")); err != nil {
		t.Fatal(err)
	}
	ev := sim.Events()
	if len(ev) != 1 || ev[0].Name != "created" || ev[0].TxID != "tx-1" {
		t.Fatalf("events = %+v", ev)
	}
}

func TestContextAccessors(t *testing.T) {
	db, h := seededDB(t)
	ctx := testCtx(t)
	sim := NewSimulator(ctx, "cc", db, h)
	if sim.GetTxID() != "tx-1" || sim.GetChannelID() != "ch" {
		t.Fatal("context accessors wrong")
	}
	if sim.GetCreator().ID() != ctx.Creator.ID() {
		t.Fatal("creator wrong")
	}
	if !sim.GetTxTimestamp().Equal(time.Unix(1000, 0)) {
		t.Fatal("timestamp wrong")
	}
}

func TestRWSetDeterministicOrder(t *testing.T) {
	db, h := seededDB(t)
	build := func(order []string) statedb.RWSet {
		sim := NewSimulator(testCtx(t), "cc", db, h)
		for _, k := range order {
			_, _ = sim.GetState(k)
			_ = sim.PutState(k, []byte("v"))
		}
		return sim.RWSet()
	}
	a := build([]string{"z", "a", "m"})
	b := build([]string{"m", "z", "a"})
	if !bytes.Equal(a.Digest(nil), b.Digest(nil)) {
		t.Fatal("rwset digest depends on access order")
	}
}

// crossCaller invokes another chaincode.
type crossCaller struct{}

func (crossCaller) Name() string { return "caller" }
func (crossCaller) Invoke(stub Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "callPut":
		if _, err := stub.InvokeChaincode("callee", "put", args); err != nil {
			return nil, err
		}
		return nil, stub.PutState("own-key", []byte("own-value"))
	case "recurse":
		return stub.InvokeChaincode("caller", "recurse", nil)
	default:
		return nil, errors.New("unknown fn")
	}
}

type callee struct{}

func (callee) Name() string { return "callee" }
func (callee) Invoke(stub Stub, fn string, args [][]byte) ([]byte, error) {
	if fn != "put" {
		return nil, errors.New("unknown fn")
	}
	return nil, stub.PutState(string(args[0]), args[1])
}

func TestInvokeChaincodeCrossNamespace(t *testing.T) {
	db, h := seededDB(t)
	reg := NewRegistry()
	if err := reg.Register(crossCaller{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(callee{}); err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(testCtx(t), "caller", db, h).WithRegistry(reg)
	cc, _ := reg.Get("caller")
	if _, err := cc.Invoke(sim, "callPut", [][]byte{[]byte("ck"), []byte("cv")}); err != nil {
		t.Fatal(err)
	}
	rw := sim.RWSet()
	if len(rw.Writes) != 2 {
		t.Fatalf("writes = %+v", rw.Writes)
	}
	// One write per namespace.
	ns := map[string]string{}
	for _, w := range rw.Writes {
		ns[w.Namespace] = w.Key
	}
	if ns["callee"] != "ck" || ns["caller"] != "own-key" {
		t.Fatalf("namespaces = %v", ns)
	}
}

func TestInvokeChaincodeDepthLimit(t *testing.T) {
	db, h := seededDB(t)
	reg := NewRegistry()
	if err := reg.Register(crossCaller{}); err != nil {
		t.Fatal(err)
	}
	sim := NewSimulator(testCtx(t), "caller", db, h).WithRegistry(reg)
	cc, _ := reg.Get("caller")
	_, err := cc.Invoke(sim, "recurse", nil)
	if err == nil || !strings.Contains(err.Error(), "depth") {
		t.Fatalf("recursion not bounded: %v", err)
	}
}

func TestInvokeChaincodeNoRegistry(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h)
	if _, err := sim.InvokeChaincode("x", "y", nil); err == nil {
		t.Fatal("nil registry accepted")
	}
}

func TestInvokeChaincodeUnknown(t *testing.T) {
	db, h := seededDB(t)
	sim := NewSimulator(testCtx(t), "cc", db, h).WithRegistry(NewRegistry())
	if _, err := sim.InvokeChaincode("ghost", "fn", nil); err == nil {
		t.Fatal("unknown chaincode accepted")
	}
}

func TestRegistryDuplicate(t *testing.T) {
	reg := NewRegistry()
	if err := reg.Register(callee{}); err != nil {
		t.Fatal(err)
	}
	if err := reg.Register(callee{}); err == nil {
		t.Fatal("duplicate registration accepted")
	}
	names := reg.Names()
	if len(names) != 1 || names[0] != "callee" {
		t.Fatalf("names = %v", names)
	}
}

func TestGetQueryResult(t *testing.T) {
	db, h := seededDB(t)
	b := statedb.NewUpdateBatch()
	b.Put("cc", "doc1", []byte(`{"kind":"a"}`))
	b.Put("cc", "doc2", []byte(`{"kind":"b"}`))
	db.ApplyUpdates(b, statedb.Version{BlockNum: 2})
	sim := NewSimulator(testCtx(t), "cc", db, h)
	got, err := sim.GetQueryResult(statedb.Selector{"kind": "a"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Key != "doc1" {
		t.Fatalf("query = %+v", got)
	}
}
