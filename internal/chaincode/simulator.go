package chaincode

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"time"

	"socialchain/internal/msp"
	"socialchain/internal/statedb"
)

// TxContext carries the immutable context of one proposal execution.
type TxContext struct {
	TxID      string
	ChannelID string
	Creator   msp.Identity
	Timestamp time.Time
}

// maxInvokeDepth bounds cross-chaincode call nesting.
const maxInvokeDepth = 8

// Simulator executes a chaincode invocation against a snapshot of the world
// state, recording a read set (with versions) and buffering writes. It
// implements Stub. Cross-chaincode invocations run on the same simulator
// with the namespace switched, so one transaction carries a single merged
// read/write set spanning all touched namespaces.
type Simulator struct {
	ctx      TxContext
	ns       string
	depth    int
	sub      int // current batch call index, -1 outside InvokeBatch
	db       *statedb.DB
	history  *statedb.HistoryDB
	registry *Registry

	reads   map[string]statedb.ReadItem  // keyed by ns\x00key
	writes  map[string]statedb.WriteItem // keyed by ns\x00key
	events  []Event
	ordered []string // write nsKeys in first-write order
}

var _ Stub = (*Simulator)(nil)

// NewSimulator creates a simulator for one invocation of chaincode ns.
// registry enables InvokeChaincode and may be nil for isolated tests.
func NewSimulator(ctx TxContext, ns string, db *statedb.DB, history *statedb.HistoryDB) *Simulator {
	return &Simulator{
		ctx:     ctx,
		ns:      ns,
		sub:     -1,
		db:      db,
		history: history,
		reads:   make(map[string]statedb.ReadItem),
		writes:  make(map[string]statedb.WriteItem),
	}
}

// WithRegistry enables cross-chaincode invocation.
func (s *Simulator) WithRegistry(r *Registry) *Simulator {
	s.registry = r
	return s
}

func (s *Simulator) nsKey(key string) string { return s.ns + "\x00" + key }

// GetState implements Stub: reads observe this simulation's own writes
// first, then committed state (recording the version for MVCC).
func (s *Simulator) GetState(key string) ([]byte, error) {
	nk := s.nsKey(key)
	if w, ok := s.writes[nk]; ok {
		if w.IsDelete {
			return nil, nil
		}
		return append([]byte(nil), w.Value...), nil
	}
	vv, ok := s.db.GetState(s.ns, key)
	s.recordRead(key, vv.Version, ok)
	if !ok {
		return nil, nil
	}
	return append([]byte(nil), vv.Value...), nil
}

func (s *Simulator) recordRead(key string, v statedb.Version, exists bool) {
	nk := s.nsKey(key)
	if _, seen := s.reads[nk]; seen {
		return
	}
	s.reads[nk] = statedb.ReadItem{Namespace: s.ns, Key: key, Version: v, Exists: exists}
}

// PutState implements Stub.
func (s *Simulator) PutState(key string, value []byte) error {
	if key == "" {
		return errors.New("chaincode: empty key")
	}
	nk := s.nsKey(key)
	if _, ok := s.writes[nk]; !ok {
		s.ordered = append(s.ordered, nk)
	}
	s.writes[nk] = statedb.WriteItem{Namespace: s.ns, Key: key, Value: append([]byte(nil), value...)}
	return nil
}

// DelState implements Stub.
func (s *Simulator) DelState(key string) error {
	if key == "" {
		return errors.New("chaincode: empty key")
	}
	nk := s.nsKey(key)
	if _, ok := s.writes[nk]; !ok {
		s.ordered = append(s.ordered, nk)
	}
	s.writes[nk] = statedb.WriteItem{Namespace: s.ns, Key: key, IsDelete: true}
	return nil
}

// GetStateByRange implements Stub. Committed results are merged with this
// simulation's pending writes; each committed key read is recorded for MVCC.
func (s *Simulator) GetStateByRange(start, end string) ([]statedb.KV, error) {
	committed := s.db.GetStateRange(s.ns, start, end)
	return s.mergeScan(committed, func(k string) bool {
		if k < start {
			return false
		}
		if end != "" && k >= end {
			return false
		}
		return true
	}), nil
}

// GetStateByPartialCompositeKey implements Stub.
func (s *Simulator) GetStateByPartialCompositeKey(objectType string, attrs []string) ([]statedb.KV, error) {
	prefix, err := BuildCompositeKey(objectType, attrs)
	if err != nil {
		return nil, err
	}
	committed := s.db.GetStateByPrefix(s.ns, prefix)
	return s.mergeScan(committed, func(k string) bool {
		return strings.HasPrefix(k, prefix)
	}), nil
}

// mergeScan layers this namespace's pending writes over committed results.
func (s *Simulator) mergeScan(committed []statedb.KV, inRange func(string) bool) []statedb.KV {
	out := make([]statedb.KV, 0, len(committed))
	committedKeys := make(map[string]bool, len(committed))
	for _, kv := range committed {
		s.recordRead(kv.Key, kv.Version, true)
		committedKeys[kv.Key] = true
		if w, ok := s.writes[s.nsKey(kv.Key)]; ok {
			if w.IsDelete {
				continue
			}
			kv.Value = append([]byte(nil), w.Value...)
		}
		out = append(out, kv)
	}
	nsPrefix := s.ns + "\x00"
	for _, nk := range s.ordered {
		if !strings.HasPrefix(nk, nsPrefix) {
			continue
		}
		key := nk[len(nsPrefix):]
		w := s.writes[nk]
		if w.IsDelete || !inRange(key) || committedKeys[key] {
			continue
		}
		out = append(out, statedb.KV{Namespace: s.ns, Key: key, Value: append([]byte(nil), w.Value...)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Key < out[j].Key })
	return out
}

// GetQueryResult implements Stub. Rich queries run over committed state
// only (no phantom-read protection, matching Fabric).
func (s *Simulator) GetQueryResult(sel statedb.Selector) ([]statedb.KV, error) {
	return s.db.ExecuteQuery(s.ns, sel)
}

// GetIndexPage implements Stub. Like GetQueryResult it reads committed
// state only; the returned keys are world-state keys of this namespace
// that the caller resolves through GetState (which records MVCC reads).
// Indexes belonging to other namespaces are hidden, as state is.
func (s *Simulator) GetIndexPage(index, valuePrefix string, limit int, token string) (statedb.IndexPage, error) {
	for _, spec := range s.db.Indexes() {
		if spec.Name == index && spec.Namespace == s.ns {
			return s.db.IterIndex(index, valuePrefix, limit, 0, token)
		}
	}
	return statedb.IndexPage{}, fmt.Errorf("chaincode: no index %q in namespace %q", index, s.ns)
}

// GetHistoryForKey implements Stub.
func (s *Simulator) GetHistoryForKey(key string) ([]statedb.HistEntry, error) {
	if s.history == nil {
		return nil, errors.New("chaincode: history database unavailable")
	}
	return s.history.Get(s.ns, key), nil
}

// CreateCompositeKey implements Stub.
func (s *Simulator) CreateCompositeKey(objectType string, attrs []string) (string, error) {
	return BuildCompositeKey(objectType, attrs)
}

// SplitCompositeKey implements Stub.
func (s *Simulator) SplitCompositeKey(key string) (string, []string, error) {
	return SplitCompositeKeyString(key)
}

// GetTxID implements Stub. Inside InvokeBatch it returns the current
// call's sub-transaction ID, so chaincode that derives state keys from the
// transaction ID (the data contract's record keys) stays collision-free
// across the calls of one batched envelope.
func (s *Simulator) GetTxID() string {
	if s.sub >= 0 {
		return SubTxID(s.ctx.TxID, s.sub)
	}
	return s.ctx.TxID
}

// GetChannelID implements Stub.
func (s *Simulator) GetChannelID() string { return s.ctx.ChannelID }

// GetCreator implements Stub.
func (s *Simulator) GetCreator() msp.Identity { return s.ctx.Creator }

// GetTxTimestamp implements Stub.
func (s *Simulator) GetTxTimestamp() time.Time { return s.ctx.Timestamp }

// SetEvent implements Stub. Events raised during InvokeBatch carry the
// sub-transaction ID of the call that set them.
func (s *Simulator) SetEvent(name string, payload []byte) error {
	if name == "" {
		return errors.New("chaincode: empty event name")
	}
	s.events = append(s.events, Event{TxID: s.GetTxID(), Name: name, Payload: append([]byte(nil), payload...)})
	return nil
}

// InvokeChaincode implements Stub.
func (s *Simulator) InvokeChaincode(name, fn string, args [][]byte) ([]byte, error) {
	if s.registry == nil {
		return nil, errors.New("chaincode: no registry for cross-chaincode invocation")
	}
	cc, ok := s.registry.Get(name)
	if !ok {
		return nil, fmt.Errorf("chaincode: unknown chaincode %q", name)
	}
	if s.depth >= maxInvokeDepth {
		return nil, fmt.Errorf("chaincode: invocation depth limit (%d) exceeded", maxInvokeDepth)
	}
	savedNS := s.ns
	s.ns = name
	s.depth++
	resp, err := cc.Invoke(s, fn, args)
	s.depth--
	s.ns = savedNS
	return resp, err
}

// BatchCall names one chaincode invocation inside a batched endorsement.
type BatchCall struct {
	Chaincode string
	Fn        string
	Args      [][]byte
}

// SubTxID derives the sub-transaction ID of call i within a batched
// envelope. The data contract keys records by transaction ID, so this is
// also the record ID a batched addData call stores under.
func SubTxID(txID string, i int) string {
	return fmt.Sprintf("%s.%d", txID, i)
}

// InvokeBatch is the batch endorsement entrypoint: it executes calls
// sequentially on this one simulator, producing a single merged read/write
// set, response list and event stream. Later calls observe earlier calls'
// uncommitted writes (a per-source provenance head updated by call i is
// read back by call i+1), which is what lets a batch of writes that would
// MVCC-conflict as individual envelopes commit atomically as one
// transaction. A failing call aborts the whole batch — the endorsement is
// all-or-nothing, exactly like a single invocation.
func (s *Simulator) InvokeBatch(calls []BatchCall) ([][]byte, error) {
	if s.registry == nil {
		return nil, errors.New("chaincode: no registry for batch invocation")
	}
	if len(calls) == 0 {
		return nil, errors.New("chaincode: empty batch")
	}
	savedNS := s.ns
	defer func() {
		s.ns = savedNS
		s.sub = -1
	}()
	responses := make([][]byte, len(calls))
	for i, c := range calls {
		cc, ok := s.registry.Get(c.Chaincode)
		if !ok {
			return nil, fmt.Errorf("chaincode: unknown chaincode %q", c.Chaincode)
		}
		s.sub = i
		s.ns = c.Chaincode
		resp, err := cc.Invoke(s, c.Fn, c.Args)
		if err != nil {
			return nil, fmt.Errorf("chaincode: batch call %d (%s.%s): %w", i, c.Chaincode, c.Fn, err)
		}
		responses[i] = resp
	}
	return responses, nil
}

// Events returns events set during simulation.
func (s *Simulator) Events() []Event { return s.events }

// RWSet finalises the simulation into a deterministic read/write set.
func (s *Simulator) RWSet() statedb.RWSet {
	rw := statedb.RWSet{}
	readKeys := make([]string, 0, len(s.reads))
	for k := range s.reads {
		readKeys = append(readKeys, k)
	}
	sort.Strings(readKeys)
	for _, k := range readKeys {
		rw.Reads = append(rw.Reads, s.reads[k])
	}
	writeKeys := append([]string(nil), s.ordered...)
	sort.Strings(writeKeys)
	for _, k := range writeKeys {
		rw.Writes = append(rw.Writes, s.writes[k])
	}
	return rw
}

// Registry holds deployed chaincodes by name.
type Registry struct {
	codes map[string]Chaincode
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{codes: make(map[string]Chaincode)}
}

// Register deploys a chaincode; duplicate names are an error.
func (r *Registry) Register(cc Chaincode) error {
	if _, ok := r.codes[cc.Name()]; ok {
		return fmt.Errorf("chaincode: %q already registered", cc.Name())
	}
	r.codes[cc.Name()] = cc
	return nil
}

// Get returns the chaincode registered under name.
func (r *Registry) Get(name string) (Chaincode, bool) {
	cc, ok := r.codes[name]
	return cc, ok
}

// Names lists registered chaincodes in sorted order.
func (r *Registry) Names() []string {
	out := make([]string, 0, len(r.codes))
	for n := range r.codes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
