// Package chaincode implements the smart-contract runtime of the
// permissioned blockchain: the stub API contracts program against (state
// access, composite keys, events, transaction context) and the transaction
// simulator that captures read/write sets for endorsement, mirroring
// Hyperledger Fabric's shim/chaincode model that the paper's contracts
// (§III-B) are written against.
package chaincode

import (
	"errors"
	"fmt"
	"strings"
	"time"

	"socialchain/internal/msp"
	"socialchain/internal/statedb"
)

// compositeKeyNamespace separates composite keys from simple keys, as in
// Fabric (a leading U+0000).
const compositeKeySep = "\x00"

// Event is an application event emitted by a chaincode during execution;
// committers deliver events of valid transactions to subscribers.
type Event struct {
	TxID    string
	Name    string
	Payload []byte
}

// Stub is the interface chaincodes use to interact with the ledger world
// state and transaction context.
type Stub interface {
	// GetState returns the committed (or simulated-written) value of key.
	GetState(key string) ([]byte, error)
	// PutState stages a write of key.
	PutState(key string, value []byte) error
	// DelState stages a deletion of key.
	DelState(key string) error
	// GetStateByRange returns committed keys in [start, end), merged with
	// this simulation's own writes.
	GetStateByRange(start, end string) ([]statedb.KV, error)
	// GetStateByPartialCompositeKey scans composite keys by prefix.
	GetStateByPartialCompositeKey(objectType string, attrs []string) ([]statedb.KV, error)
	// CreateCompositeKey builds a composite key from an object type and
	// attribute list.
	CreateCompositeKey(objectType string, attrs []string) (string, error)
	// SplitCompositeKey reverses CreateCompositeKey.
	SplitCompositeKey(key string) (string, []string, error)
	// GetQueryResult runs a rich selector query over committed state.
	GetQueryResult(sel statedb.Selector) ([]statedb.KV, error)
	// GetIndexPage pages through a secondary index of this chaincode's
	// namespace over committed state (no phantom-read protection, like
	// GetQueryResult). valuePrefix narrows by indexed value; limit bounds
	// the page; token resumes a previous page.
	GetIndexPage(index, valuePrefix string, limit int, token string) (statedb.IndexPage, error)
	// GetHistoryForKey returns the committed update history of key.
	GetHistoryForKey(key string) ([]statedb.HistEntry, error)
	// GetTxID returns the executing transaction's ID.
	GetTxID() string
	// GetChannelID returns the channel name.
	GetChannelID() string
	// GetCreator returns the identity that submitted the proposal.
	GetCreator() msp.Identity
	// GetTxTimestamp returns the client-asserted proposal time.
	GetTxTimestamp() time.Time
	// SetEvent attaches a named event to the transaction.
	SetEvent(name string, payload []byte) error
	// InvokeChaincode calls another deployed chaincode within the same
	// transaction; its reads and writes merge into this transaction's
	// read/write set under the callee's namespace (as in Fabric's
	// same-channel cross-chaincode invocation).
	InvokeChaincode(name, fn string, args [][]byte) ([]byte, error)
}

// Chaincode is a deployed smart contract.
type Chaincode interface {
	// Name is the chaincode's registered name (its state namespace).
	Name() string
	// Invoke dispatches a function call. Returning an error marks the
	// proposal as failed; no writes are applied.
	Invoke(stub Stub, fn string, args [][]byte) ([]byte, error)
}

// BuildCompositeKey is the package-level composite key constructor used by
// both the stub and query helpers.
func BuildCompositeKey(objectType string, attrs []string) (string, error) {
	if strings.Contains(objectType, compositeKeySep) {
		return "", errors.New("chaincode: object type contains reserved separator")
	}
	var b strings.Builder
	b.WriteString(compositeKeySep)
	b.WriteString(objectType)
	b.WriteString(compositeKeySep)
	for _, a := range attrs {
		if strings.Contains(a, compositeKeySep) {
			return "", errors.New("chaincode: attribute contains reserved separator")
		}
		b.WriteString(a)
		b.WriteString(compositeKeySep)
	}
	return b.String(), nil
}

// SplitCompositeKeyString reverses BuildCompositeKey.
func SplitCompositeKeyString(key string) (string, []string, error) {
	if !strings.HasPrefix(key, compositeKeySep) {
		return "", nil, fmt.Errorf("chaincode: %q is not a composite key", key)
	}
	parts := strings.Split(key, compositeKeySep)
	// parts[0] is empty (leading sep); last is empty (trailing sep).
	if len(parts) < 3 {
		return "", nil, fmt.Errorf("chaincode: malformed composite key %q", key)
	}
	return parts[1], parts[2 : len(parts)-1], nil
}
