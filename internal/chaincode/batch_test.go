package chaincode

import (
	"errors"
	"fmt"
	"strings"
	"testing"
)

// batchCC exercises batch semantics: "own" keys a record under the
// current transaction ID, "incr" bumps a shared counter, "boom" fails.
type batchCC struct{}

func (batchCC) Name() string { return "bcc" }

func (batchCC) Invoke(stub Stub, fn string, args [][]byte) ([]byte, error) {
	switch fn {
	case "own":
		key := "rec/" + stub.GetTxID()
		if existing, err := stub.GetState(key); err != nil {
			return nil, err
		} else if existing != nil {
			return nil, fmt.Errorf("record %s already exists", key)
		}
		if err := stub.PutState(key, args[0]); err != nil {
			return nil, err
		}
		if err := stub.SetEvent("owned", []byte(key)); err != nil {
			return nil, err
		}
		return []byte(stub.GetTxID()), nil
	case "incr":
		raw, err := stub.GetState("counter")
		if err != nil {
			return nil, err
		}
		n := 0
		if len(raw) > 0 {
			fmt.Sscanf(string(raw), "%d", &n)
		}
		n++
		out := []byte(fmt.Sprintf("%d", n))
		return out, stub.PutState("counter", out)
	case "boom":
		return nil, errors.New("poisoned call")
	default:
		return nil, fmt.Errorf("unknown fn %q", fn)
	}
}

func batchSim(t *testing.T) *Simulator {
	t.Helper()
	reg := NewRegistry()
	if err := reg.Register(batchCC{}); err != nil {
		t.Fatal(err)
	}
	db, h := seededDB(t)
	return NewSimulator(testCtx(t), "bcc", db, h).WithRegistry(reg)
}

// TestInvokeBatchSubTxIDs checks each call runs under its own
// sub-transaction ID, so TxID-derived state keys stay collision-free.
func TestInvokeBatchSubTxIDs(t *testing.T) {
	sim := batchSim(t)
	calls := []BatchCall{
		{Chaincode: "bcc", Fn: "own", Args: [][]byte{[]byte("a")}},
		{Chaincode: "bcc", Fn: "own", Args: [][]byte{[]byte("b")}},
		{Chaincode: "bcc", Fn: "own", Args: [][]byte{[]byte("c")}},
	}
	resps, err := sim.InvokeBatch(calls)
	if err != nil {
		t.Fatalf("InvokeBatch: %v", err)
	}
	for i, r := range resps {
		want := SubTxID("tx-1", i)
		if string(r) != want {
			t.Fatalf("call %d response = %s, want %s", i, r, want)
		}
	}
	rw := sim.RWSet()
	wrote := map[string]bool{}
	for _, w := range rw.Writes {
		wrote[w.Key] = true
	}
	for i := range calls {
		if !wrote["rec/"+SubTxID("tx-1", i)] {
			t.Fatalf("missing write for call %d; writes: %v", i, wrote)
		}
	}
	// Events carry sub-transaction IDs.
	events := sim.Events()
	if len(events) != 3 {
		t.Fatalf("got %d events", len(events))
	}
	for i, e := range events {
		if e.TxID != SubTxID("tx-1", i) {
			t.Fatalf("event %d TxID = %s", i, e.TxID)
		}
	}
	// Outside the batch, GetTxID reverts to the envelope ID.
	if got := sim.GetTxID(); got != "tx-1" {
		t.Fatalf("GetTxID after batch = %s", got)
	}
}

// TestInvokeBatchReadsOwnWrites checks later calls observe earlier calls'
// uncommitted writes and the merged RWSet carries one final write.
func TestInvokeBatchReadsOwnWrites(t *testing.T) {
	sim := batchSim(t)
	calls := []BatchCall{
		{Chaincode: "bcc", Fn: "incr"},
		{Chaincode: "bcc", Fn: "incr"},
		{Chaincode: "bcc", Fn: "incr"},
	}
	resps, err := sim.InvokeBatch(calls)
	if err != nil {
		t.Fatalf("InvokeBatch: %v", err)
	}
	if string(resps[2]) != "3" {
		t.Fatalf("third incr = %s, want 3", resps[2])
	}
	rw := sim.RWSet()
	counterWrites := 0
	for _, w := range rw.Writes {
		if w.Key == "counter" {
			counterWrites++
			if string(w.Value) != "3" {
				t.Fatalf("counter write = %s", w.Value)
			}
		}
	}
	if counterWrites != 1 {
		t.Fatalf("counter written %d times in RWSet", counterWrites)
	}
	// Only the first touch records a committed read.
	reads := 0
	for _, r := range rw.Reads {
		if r.Key == "counter" {
			reads++
			if r.Exists {
				t.Fatalf("counter read recorded as existing")
			}
		}
	}
	if reads != 1 {
		t.Fatalf("counter read %d times in RWSet", reads)
	}
}

// TestInvokeBatchFailureAborts checks all-or-nothing semantics.
func TestInvokeBatchFailureAborts(t *testing.T) {
	sim := batchSim(t)
	_, err := sim.InvokeBatch([]BatchCall{
		{Chaincode: "bcc", Fn: "incr"},
		{Chaincode: "bcc", Fn: "boom"},
	})
	if err == nil || !strings.Contains(err.Error(), "batch call 1") {
		t.Fatalf("err = %v, want batch call 1 failure", err)
	}
	if got := sim.GetTxID(); got != "tx-1" {
		t.Fatalf("GetTxID after failed batch = %s", got)
	}
}

// TestInvokeBatchValidation covers the empty-batch and unknown-chaincode
// errors.
func TestInvokeBatchValidation(t *testing.T) {
	sim := batchSim(t)
	if _, err := sim.InvokeBatch(nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := sim.InvokeBatch([]BatchCall{{Chaincode: "nope", Fn: "x"}}); err == nil {
		t.Fatal("unknown chaincode accepted")
	}
	db, h := seededDB(t)
	bare := NewSimulator(testCtx(t), "bcc", db, h)
	if _, err := bare.InvokeBatch([]BatchCall{{Chaincode: "bcc", Fn: "incr"}}); err == nil {
		t.Fatal("registry-less batch accepted")
	}
}
