package dht

import (
	"encoding/json"
	"time"

	"socialchain/internal/cid"
	"socialchain/internal/transport"
)

// RPC method names the transport-backed DHT serves.
const (
	methodFindNode     = "dht/findnode"
	methodAddProvider  = "dht/addprovider"
	methodGetProviders = "dht/getproviders"
)

// DefaultRPCTimeout bounds one DHT round trip over a real transport.
const DefaultRPCTimeout = 10 * time.Second

type findNodeReq struct {
	From   PeerInfo `json:"from"`
	Target ID       `json:"target"`
}

type findNodeResp struct {
	Peers []PeerInfo `json:"peers"`
}

type addProviderReq struct {
	From     PeerInfo `json:"from"`
	Cid      cid.Cid  `json:"cid"`
	Provider string   `json:"provider"`
}

type getProvidersReq struct {
	From PeerInfo `json:"from"`
	Cid  cid.Cid  `json:"cid"`
}

type getProvidersResp struct {
	Providers []string   `json:"providers"`
	Closer    []PeerInfo `json:"closer"`
}

// transportWire implements Wire over a transport endpoint: the three
// Kademlia RPCs become framed socket calls addressed by transport peer ID.
type transportWire struct {
	rpc     *transport.RPC
	timeout time.Duration
}

// NewNodeOverTransport binds a DHT node to a transport endpoint: its peer
// name is the endpoint's transport ID, lookups ride the endpoint's framed
// RPCs, and the node answers remote find/provide queries. The caller wires
// bootstrap peers through the transport's address book.
func NewNodeOverTransport(t transport.Transport, rpc *transport.RPC) *Node {
	name := t.ID()
	node := &Node{
		name:      name,
		id:        PeerID(name),
		wire:      &transportWire{rpc: rpc, timeout: DefaultRPCTimeout},
		rt:        NewRoutingTable(PeerID(name)),
		providers: make(map[cid.Cid]map[string]bool),
	}
	rpc.Handle(methodFindNode, func(from string, req []byte) ([]byte, error) {
		var r findNodeReq
		if err := json.Unmarshal(req, &r); err != nil {
			return nil, err
		}
		return json.Marshal(findNodeResp{Peers: node.handleFindNode(r.From, r.Target)})
	})
	rpc.Handle(methodAddProvider, func(from string, req []byte) ([]byte, error) {
		var r addProviderReq
		if err := json.Unmarshal(req, &r); err != nil {
			return nil, err
		}
		node.handleAddProvider(r.From, r.Cid, r.Provider)
		return json.Marshal(struct{}{})
	})
	rpc.Handle(methodGetProviders, func(from string, req []byte) ([]byte, error) {
		var r getProvidersReq
		if err := json.Unmarshal(req, &r); err != nil {
			return nil, err
		}
		provs, closer := node.handleGetProviders(r.From, r.Cid)
		return json.Marshal(getProvidersResp{Providers: provs, Closer: closer})
	})
	return node
}

func (w *transportWire) FindNode(from PeerInfo, to string, target ID) ([]PeerInfo, error) {
	var resp findNodeResp
	if err := w.rpc.CallJSON(to, methodFindNode, findNodeReq{From: from, Target: target}, &resp, w.timeout); err != nil {
		return nil, err
	}
	return resp.Peers, nil
}

func (w *transportWire) AddProvider(from PeerInfo, to string, c cid.Cid, provider string) error {
	return w.rpc.CallJSON(to, methodAddProvider, addProviderReq{From: from, Cid: c, Provider: provider}, nil, w.timeout)
}

func (w *transportWire) GetProviders(from PeerInfo, to string, c cid.Cid) ([]string, []PeerInfo, error) {
	var resp getProvidersResp
	if err := w.rpc.CallJSON(to, methodGetProviders, getProvidersReq{From: from, Cid: c}, &resp, w.timeout); err != nil {
		return nil, nil, err
	}
	return resp.Providers, resp.Closer, nil
}
