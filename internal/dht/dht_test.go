package dht

import (
	"fmt"
	"testing"
	"testing/quick"

	"socialchain/internal/cid"
)

func TestPeerIDDeterministic(t *testing.T) {
	if PeerID("a") != PeerID("a") {
		t.Fatal("unstable peer id")
	}
	if PeerID("a") == PeerID("b") {
		t.Fatal("distinct names collide")
	}
}

func TestDistanceProperties(t *testing.T) {
	err := quick.Check(func(a, b [32]byte) bool {
		da := ID(a)
		db := ID(b)
		// d(x,x) = 0; symmetry.
		zero := ID{}
		if Distance(da, da) != zero {
			return false
		}
		return Distance(da, db) == Distance(db, da)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCommonPrefixLen(t *testing.T) {
	a := ID{}
	b := ID{}
	if got := CommonPrefixLen(a, b); got != IDLen*8-1 {
		t.Fatalf("identical ids cpl = %d", got)
	}
	b[0] = 0x80
	if got := CommonPrefixLen(a, b); got != 0 {
		t.Fatalf("msb differs, cpl = %d", got)
	}
	b[0] = 0x01
	if got := CommonPrefixLen(a, b); got != 7 {
		t.Fatalf("lsb of first byte differs, cpl = %d", got)
	}
}

func TestRoutingTableUpdateAndClosest(t *testing.T) {
	self := PeerID("self")
	rt := NewRoutingTable(self)
	rt.Update(PeerInfo{Name: "self", ID: self}) // self is ignored
	if rt.Size() != 0 {
		t.Fatal("self inserted")
	}
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("peer-%d", i)
		rt.Update(PeerInfo{Name: name, ID: PeerID(name)})
	}
	target := PeerID("target")
	closest := rt.Closest(target, 10)
	if len(closest) != 10 {
		t.Fatalf("Closest returned %d", len(closest))
	}
	// Verify ordering by distance.
	for i := 1; i < len(closest); i++ {
		if Distance(closest[i].ID, target).Less(Distance(closest[i-1].ID, target)) {
			t.Fatal("closest not sorted by distance")
		}
	}
}

func TestRoutingTableRefreshMovesToTail(t *testing.T) {
	rt := NewRoutingTable(PeerID("self"))
	p := PeerInfo{Name: "p", ID: PeerID("p")}
	rt.Update(p)
	rt.Update(p) // refresh, no duplicate
	if rt.Size() != 1 {
		t.Fatalf("size = %d", rt.Size())
	}
}

func newTestNetwork(n int) (*Network, []*Node) {
	net := NewNetwork(nil, nil)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = net.NewNode(fmt.Sprintf("node-%d", i))
	}
	for _, nd := range nodes[1:] {
		nd.Bootstrap(nodes[0].Info())
	}
	for _, nd := range nodes {
		nd.IterativeFindNode(nd.ID())
	}
	return net, nodes
}

func TestBootstrapPopulatesRoutingTables(t *testing.T) {
	_, nodes := newTestNetwork(10)
	for i, nd := range nodes {
		if nd.rt.Size() == 0 {
			t.Fatalf("node %d has empty routing table", i)
		}
	}
}

func TestProvideAndFindProviders(t *testing.T) {
	_, nodes := newTestNetwork(8)
	content := cid.SumRaw([]byte("content"))
	if err := nodes[3].Provide(content); err != nil {
		t.Fatal(err)
	}
	// Any node should discover the provider.
	for i, nd := range nodes {
		provs := nd.FindProviders(content, 4)
		found := false
		for _, p := range provs {
			if p == "node-3" {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d did not find provider: %v", i, provs)
		}
	}
}

func TestMultipleProviders(t *testing.T) {
	_, nodes := newTestNetwork(8)
	content := cid.SumRaw([]byte("shared"))
	if err := nodes[1].Provide(content); err != nil {
		t.Fatal(err)
	}
	if err := nodes[5].Provide(content); err != nil {
		t.Fatal(err)
	}
	provs := nodes[7].FindProviders(content, 8)
	if len(provs) < 2 {
		t.Fatalf("found %d providers, want >=2: %v", len(provs), provs)
	}
}

func TestFindProvidersAbsentContent(t *testing.T) {
	_, nodes := newTestNetwork(5)
	provs := nodes[0].FindProviders(cid.SumRaw([]byte("nothing")), 4)
	if len(provs) != 0 {
		t.Fatalf("phantom providers: %v", provs)
	}
}

func TestSingleNodeNetworkProvide(t *testing.T) {
	net := NewNetwork(nil, nil)
	solo := net.NewNode("solo")
	content := cid.SumRaw([]byte("solo-content"))
	if err := solo.Provide(content); err != nil {
		t.Fatal(err)
	}
	provs := solo.FindProviders(content, 4)
	if len(provs) != 1 || provs[0] != "solo" {
		t.Fatalf("providers = %v", provs)
	}
}

func TestIterativeFindNodeConverges(t *testing.T) {
	_, nodes := newTestNetwork(30)
	target := PeerID("node-17")
	found := nodes[2].IterativeFindNode(target)
	if len(found) == 0 {
		t.Fatal("lookup returned nothing")
	}
	// node-17 itself should appear in the result set.
	ok := false
	for _, p := range found {
		if p.Name == "node-17" {
			ok = true
		}
	}
	if !ok {
		t.Fatalf("lookup for node-17 did not return it: %v", found)
	}
}

func TestProviderCount(t *testing.T) {
	net := NewNetwork(nil, nil)
	n := net.NewNode("n")
	if n.ProviderCount() != 0 {
		t.Fatal("fresh node has providers")
	}
	n.handleAddProvider(n.Info(), cid.SumRaw([]byte("x")), "n")
	if n.ProviderCount() != 1 {
		t.Fatal("provider not recorded")
	}
}
