package dht

import (
	"fmt"
	"sort"
	"sync"

	"socialchain/internal/cid"
	"socialchain/internal/sim"
)

// Wire is the seam the Kademlia protocol speaks through: the three
// synchronous RPCs of the simplified DHT. Network implements it with
// latency-delayed in-process calls (the deterministic default); the
// transport backend (wire.go) implements it over framed socket RPCs, so
// the same iterative-lookup code runs in-process and across OS processes.
type Wire interface {
	FindNode(from PeerInfo, to string, target ID) ([]PeerInfo, error)
	AddProvider(from PeerInfo, to string, c cid.Cid, provider string) error
	GetProviders(from PeerInfo, to string, c cid.Cid) ([]string, []PeerInfo, error)
}

// Network connects DHT nodes in-process. RPCs are synchronous method calls
// delayed by the latency model, mimicking a request/response wire protocol.
type Network struct {
	mu      sync.RWMutex
	nodes   map[string]*Node
	latency sim.LatencyModel
	clock   sim.Clock
}

// NewNetwork creates a network with the given latency model (nil = zero).
func NewNetwork(latency sim.LatencyModel, clock sim.Clock) *Network {
	if latency == nil {
		latency = sim.ZeroLatency{}
	}
	if clock == nil {
		clock = sim.RealClock{}
	}
	return &Network{nodes: make(map[string]*Node), latency: latency, clock: clock}
}

func (n *Network) lookup(name string) (*Node, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	node, ok := n.nodes[name]
	if !ok {
		return nil, fmt.Errorf("dht: unknown peer %q", name)
	}
	return node, nil
}

func (n *Network) delay(from, to string) {
	if d := n.latency.Delay(from, to); d > 0 {
		n.clock.Sleep(d)
	}
}

// Node is one DHT participant.
type Node struct {
	name string
	id   ID
	wire Wire
	rt   *RoutingTable

	mu        sync.RWMutex
	providers map[cid.Cid]map[string]bool
}

// NewNode registers a node named name on the network.
func (n *Network) NewNode(name string) *Node {
	node := &Node{
		name:      name,
		id:        PeerID(name),
		wire:      n,
		rt:        NewRoutingTable(PeerID(name)),
		providers: make(map[cid.Cid]map[string]bool),
	}
	n.mu.Lock()
	n.nodes[name] = node
	n.mu.Unlock()
	return node
}

// FindNode implements Wire over the in-process network.
func (n *Network) FindNode(from PeerInfo, to string, target ID) ([]PeerInfo, error) {
	remote, err := n.lookup(to)
	if err != nil {
		return nil, err
	}
	n.delay(from.Name, to)
	res := remote.handleFindNode(from, target)
	n.delay(to, from.Name)
	return res, nil
}

// AddProvider implements Wire over the in-process network.
func (n *Network) AddProvider(from PeerInfo, to string, c cid.Cid, provider string) error {
	remote, err := n.lookup(to)
	if err != nil {
		return err
	}
	n.delay(from.Name, to)
	remote.handleAddProvider(from, c, provider)
	return nil
}

// GetProviders implements Wire over the in-process network.
func (n *Network) GetProviders(from PeerInfo, to string, c cid.Cid) ([]string, []PeerInfo, error) {
	remote, err := n.lookup(to)
	if err != nil {
		return nil, nil, err
	}
	n.delay(from.Name, to)
	provs, closer := remote.handleGetProviders(from, c)
	n.delay(to, from.Name)
	return provs, closer, nil
}

// Name returns the peer name.
func (n *Node) Name() string { return n.name }

// ID returns the node's keyspace ID.
func (n *Node) ID() ID { return n.id }

// Info returns the node's PeerInfo.
func (n *Node) Info() PeerInfo { return PeerInfo{Name: n.name, ID: n.id} }

// Bootstrap introduces the node to a seed peer and populates its routing
// table with a self-lookup, the standard Kademlia join.
func (n *Node) Bootstrap(seed PeerInfo) {
	n.rt.Update(seed)
	n.IterativeFindNode(n.id)
}

// --- RPC handlers (remote side) ---

// handleFindNode returns the k closest peers this node knows to target.
func (n *Node) handleFindNode(from PeerInfo, target ID) []PeerInfo {
	n.rt.Update(from)
	return n.rt.Closest(target, BucketSize)
}

// handleAddProvider records that provider holds content c.
func (n *Node) handleAddProvider(from PeerInfo, c cid.Cid, provider string) {
	n.rt.Update(from)
	n.mu.Lock()
	defer n.mu.Unlock()
	set, ok := n.providers[c]
	if !ok {
		set = make(map[string]bool)
		n.providers[c] = set
	}
	set[provider] = true
}

// handleGetProviders returns known providers of c plus closer peers.
func (n *Node) handleGetProviders(from PeerInfo, c cid.Cid) ([]string, []PeerInfo) {
	n.rt.Update(from)
	n.mu.RLock()
	var provs []string
	for p := range n.providers[c] {
		provs = append(provs, p)
	}
	n.mu.RUnlock()
	sort.Strings(provs)
	return provs, n.rt.Closest(KeyID(c), BucketSize)
}

// --- Client-side RPCs ---

func (n *Node) rpcFindNode(peer string, target ID) ([]PeerInfo, error) {
	return n.wire.FindNode(n.Info(), peer, target)
}

func (n *Node) rpcAddProvider(peer string, c cid.Cid, provider string) error {
	return n.wire.AddProvider(n.Info(), peer, c, provider)
}

func (n *Node) rpcGetProviders(peer string, c cid.Cid) ([]string, []PeerInfo, error) {
	return n.wire.GetProviders(n.Info(), peer, c)
}

// alpha is Kademlia's lookup concurrency parameter.
const alpha = 3

// IterativeFindNode performs the iterative lookup, returning the k closest
// live peers to target and refreshing the routing table along the way.
func (n *Node) IterativeFindNode(target ID) []PeerInfo {
	shortlist := n.rt.Closest(target, BucketSize)
	queried := map[string]bool{n.name: true}
	for {
		// Pick up to alpha unqueried peers nearest the target.
		var batch []PeerInfo
		for _, p := range shortlist {
			if !queried[p.Name] {
				batch = append(batch, p)
				if len(batch) == alpha {
					break
				}
			}
		}
		if len(batch) == 0 {
			break
		}
		progressed := false
		for _, p := range batch {
			queried[p.Name] = true
			res, err := n.rpcFindNode(p.Name, target)
			if err != nil {
				continue
			}
			n.rt.Update(p)
			for _, found := range res {
				if found.Name == n.name {
					continue
				}
				n.rt.Update(found)
				if !containsPeer(shortlist, found) {
					shortlist = append(shortlist, found)
					progressed = true
				}
			}
		}
		sort.Slice(shortlist, func(i, j int) bool {
			return Distance(shortlist[i].ID, target).Less(Distance(shortlist[j].ID, target))
		})
		if len(shortlist) > BucketSize {
			shortlist = shortlist[:BucketSize]
		}
		if !progressed {
			break
		}
	}
	return shortlist
}

func containsPeer(list []PeerInfo, p PeerInfo) bool {
	for _, e := range list {
		if e.ID == p.ID {
			return true
		}
	}
	return false
}

// Provide announces this node as a provider of c to the k closest peers to
// the key (including itself if applicable).
func (n *Node) Provide(c cid.Cid) error {
	targets := n.IterativeFindNode(KeyID(c))
	if len(targets) == 0 {
		// Single-node network: record locally.
		n.handleAddProvider(n.Info(), c, n.name)
		return nil
	}
	var firstErr error
	for _, p := range targets {
		if err := n.rpcAddProvider(p.Name, c, n.name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	// Also record locally so lookups on this node succeed immediately.
	n.handleAddProvider(n.Info(), c, n.name)
	return firstErr
}

// FindProviders returns up to max peer names that advertise content c.
func (n *Node) FindProviders(c cid.Cid, max int) []string {
	found := make(map[string]bool)
	// Local records first.
	n.mu.RLock()
	for p := range n.providers[c] {
		found[p] = true
	}
	n.mu.RUnlock()

	if len(found) < max {
		for _, p := range n.IterativeFindNode(KeyID(c)) {
			provs, _, err := n.rpcGetProviders(p.Name, c)
			if err != nil {
				continue
			}
			for _, prov := range provs {
				found[prov] = true
			}
			if len(found) >= max {
				break
			}
		}
	}
	out := make([]string, 0, len(found))
	for p := range found {
		out = append(out, p)
	}
	sort.Strings(out)
	if len(out) > max {
		out = out[:max]
	}
	return out
}

// ProviderCount reports how many local provider records this node holds
// (for tests and stats).
func (n *Node) ProviderCount() int {
	n.mu.RLock()
	defer n.mu.RUnlock()
	return len(n.providers)
}
