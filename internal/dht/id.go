// Package dht implements a Kademlia-style distributed hash table used by
// the off-chain store for provider routing: which peers hold the blocks for
// a given CID. It provides XOR-metric node IDs, k-bucket routing tables,
// iterative lookups and provider records, over an in-process network with a
// pluggable latency model.
package dht

import (
	"crypto/sha256"
	"encoding/hex"
	"math/bits"

	"socialchain/internal/cid"
)

// IDLen is the node/key identifier length in bytes (SHA-256).
const IDLen = 32

// ID is a point in the 256-bit XOR keyspace.
type ID [IDLen]byte

// PeerID derives a node ID from a peer name.
func PeerID(name string) ID { return ID(sha256.Sum256([]byte(name))) }

// KeyID maps a CID into the keyspace.
func KeyID(c cid.Cid) ID { return ID(sha256.Sum256(c.Bytes())) }

// String renders a short hex prefix for logs.
func (id ID) String() string { return hex.EncodeToString(id[:6]) }

// Distance returns the XOR distance between two IDs.
func Distance(a, b ID) ID {
	var d ID
	for i := range a {
		d[i] = a[i] ^ b[i]
	}
	return d
}

// Less compares distances as big-endian integers.
func (id ID) Less(o ID) bool {
	for i := range id {
		if id[i] != o[i] {
			return id[i] < o[i]
		}
	}
	return false
}

// CommonPrefixLen returns the number of leading zero bits of the XOR
// distance between a and b, i.e. the bucket index of b relative to a.
func CommonPrefixLen(a, b ID) int {
	d := Distance(a, b)
	for i, v := range d {
		if v != 0 {
			return i*8 + bits.LeadingZeros8(v)
		}
	}
	return IDLen*8 - 1
}
