package dht

import (
	"sort"
	"sync"
)

// BucketSize is Kademlia's k: the capacity of each routing bucket and the
// size of lookup result sets.
const BucketSize = 20

// PeerInfo identifies a reachable peer.
type PeerInfo struct {
	Name string
	ID   ID
}

// RoutingTable holds known peers in k-buckets indexed by common prefix
// length with the local node.
type RoutingTable struct {
	mu      sync.RWMutex
	self    ID
	buckets [IDLen * 8][]PeerInfo
	size    int
}

// NewRoutingTable returns an empty table for the local node self.
func NewRoutingTable(self ID) *RoutingTable {
	return &RoutingTable{self: self}
}

// Update inserts or refreshes a peer. When the bucket is full the oldest
// entry is evicted (simplified from Kademlia's ping-before-evict).
func (rt *RoutingTable) Update(p PeerInfo) {
	if p.ID == rt.self {
		return
	}
	rt.mu.Lock()
	defer rt.mu.Unlock()
	b := CommonPrefixLen(rt.self, p.ID)
	bucket := rt.buckets[b]
	for i, existing := range bucket {
		if existing.ID == p.ID {
			// Move to tail (most recently seen).
			copy(bucket[i:], bucket[i+1:])
			bucket[len(bucket)-1] = p
			return
		}
	}
	if len(bucket) >= BucketSize {
		copy(bucket, bucket[1:])
		bucket[len(bucket)-1] = p
		rt.buckets[b] = bucket
		return
	}
	rt.buckets[b] = append(bucket, p)
	rt.size++
}

// Closest returns up to n known peers closest to target by XOR distance.
func (rt *RoutingTable) Closest(target ID, n int) []PeerInfo {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	all := make([]PeerInfo, 0, rt.size)
	for _, b := range rt.buckets {
		all = append(all, b...)
	}
	sort.Slice(all, func(i, j int) bool {
		return Distance(all[i].ID, target).Less(Distance(all[j].ID, target))
	})
	if len(all) > n {
		all = all[:n]
	}
	return all
}

// Size returns the number of peers in the table.
func (rt *RoutingTable) Size() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.size
}
