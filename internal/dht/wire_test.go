package dht

import (
	"fmt"
	"testing"

	"socialchain/internal/blockstore"
	"socialchain/internal/transport"
)

// TestProvideAndFindOverTransport runs the Kademlia join, provide and
// provider-lookup flows between nodes on separate transport endpoints.
func TestProvideAndFindOverTransport(t *testing.T) {
	hub := transport.NewInProcNet(nil, nil)
	const numNodes = 5
	nodes := make([]*Node, numNodes)
	for i := range nodes {
		tr := hub.Node(fmt.Sprintf("dht%d", i))
		nodes[i] = NewNodeOverTransport(tr, transport.NewRPC(tr))
	}
	seed := nodes[0].Info()
	for _, n := range nodes[1:] {
		n.Bootstrap(seed)
	}
	for _, n := range nodes {
		n.IterativeFindNode(n.ID())
	}

	c := blockstore.NewBlock([]byte("dht wire content")).Cid
	if err := nodes[3].Provide(c); err != nil {
		t.Fatalf("provide: %v", err)
	}
	for i, n := range nodes {
		provs := n.FindProviders(c, 4)
		found := false
		for _, p := range provs {
			if p == "dht3" {
				found = true
			}
		}
		if !found {
			t.Fatalf("node %d did not find provider dht3, got %v", i, provs)
		}
	}
}
