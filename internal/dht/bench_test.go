package dht

import (
	"fmt"
	"testing"

	"socialchain/internal/cid"
)

func BenchmarkIterativeFindNode(b *testing.B) {
	for _, n := range []int{8, 32} {
		b.Run(fmt.Sprintf("nodes=%d", n), func(b *testing.B) {
			_, nodes := newBenchNetwork(n)
			target := PeerID("some-target")
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				nodes[i%n].IterativeFindNode(target)
			}
		})
	}
}

func BenchmarkProvideAndFind(b *testing.B) {
	_, nodes := newBenchNetwork(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c := cid.SumRaw([]byte(fmt.Sprintf("content-%d", i)))
		if err := nodes[i%16].Provide(c); err != nil {
			b.Fatal(err)
		}
		if provs := nodes[(i+7)%16].FindProviders(c, 4); len(provs) == 0 {
			b.Fatal("provider lost")
		}
	}
}

func newBenchNetwork(n int) (*Network, []*Node) {
	net := NewNetwork(nil, nil)
	nodes := make([]*Node, n)
	for i := 0; i < n; i++ {
		nodes[i] = net.NewNode(fmt.Sprintf("bench-%d", i))
	}
	for _, nd := range nodes[1:] {
		nd.Bootstrap(nodes[0].Info())
	}
	return net, nodes
}
