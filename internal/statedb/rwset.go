package statedb

import (
	"crypto/sha256"
	"encoding/json"
)

// ReadItem records that a transaction read a key at a particular version
// (Exists=false when the key was absent).
type ReadItem struct {
	Namespace string  `json:"ns"`
	Key       string  `json:"key"`
	Version   Version `json:"version"`
	Exists    bool    `json:"exists"`
}

// WriteItem records a pending write or delete.
type WriteItem struct {
	Namespace string `json:"ns"`
	Key       string `json:"key"`
	Value     []byte `json:"value,omitempty"`
	IsDelete  bool   `json:"is_delete,omitempty"`
}

// RWSet is the outcome of simulating a transaction: everything it read
// (with versions) and everything it intends to write. It is the unit over
// which endorsers agree and committers validate.
type RWSet struct {
	Reads  []ReadItem  `json:"reads"`
	Writes []WriteItem `json:"writes"`
}

// Digest returns a deterministic hash of the read/write set combined with
// the chaincode response; endorsers sign this digest.
func (rw RWSet) Digest(response []byte) []byte {
	// Slices serialise in order, so JSON here is deterministic.
	enc, err := json.Marshal(rw)
	if err != nil {
		// RWSet contains only marshalable fields; treat failure as fatal.
		panic("statedb: rwset marshal: " + err.Error())
	}
	h := sha256.New()
	h.Write(enc)
	h.Write([]byte{0})
	h.Write(response)
	return h.Sum(nil)
}

// UpdateBatch accumulates writes to apply atomically at commit.
type UpdateBatch struct {
	updates map[string]map[string]WriteItem // ns -> key -> write
}

// NewUpdateBatch returns an empty batch.
func NewUpdateBatch() *UpdateBatch {
	return &UpdateBatch{updates: make(map[string]map[string]WriteItem)}
}

// Put stages a write.
func (b *UpdateBatch) Put(ns, key string, value []byte) {
	b.stage(WriteItem{Namespace: ns, Key: key, Value: value})
}

// Delete stages a deletion.
func (b *UpdateBatch) Delete(ns, key string) {
	b.stage(WriteItem{Namespace: ns, Key: key, IsDelete: true})
}

func (b *UpdateBatch) stage(w WriteItem) {
	m, ok := b.updates[w.Namespace]
	if !ok {
		m = make(map[string]WriteItem)
		b.updates[w.Namespace] = m
	}
	m[w.Key] = w
}

// AddRWSetWrites stages every write of an RWSet.
func (b *UpdateBatch) AddRWSetWrites(rw RWSet) {
	for _, w := range rw.Writes {
		b.stage(w)
	}
}

// Len returns the number of staged writes.
func (b *UpdateBatch) Len() int {
	n := 0
	for _, m := range b.updates {
		n += len(m)
	}
	return n
}
