package statedb

import (
	"bytes"
	"strings"
	"testing"
)

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	src := New()
	b := NewUpdateBatch()
	b.Put("data", "rec/1", []byte(`{"a":1}`))
	b.Put("data", "rec/2", []byte(`{"a":2}`))
	b.Put("trust", "score/x", []byte(`{"s":0.5}`))
	src.ApplyUpdates(b, Version{BlockNum: 3, TxNum: 1})

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := New()
	n, err := dst.Restore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("restored %d keys", n)
	}
	vv, ok := dst.GetState("data", "rec/2")
	if !ok || string(vv.Value) != `{"a":2}` {
		t.Fatalf("restored value %q", vv.Value)
	}
	if vv.Version != (Version{BlockNum: 3, TxNum: 1}) {
		t.Fatalf("restored version %v", vv.Version)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	build := func() *DB {
		db := New()
		b := NewUpdateBatch()
		b.Put("z", "k2", []byte("v2"))
		b.Put("a", "k1", []byte("v1"))
		b.Put("a", "k0", []byte("v0"))
		db.ApplyUpdates(b, Version{BlockNum: 1})
		return db
	}
	var s1, s2 bytes.Buffer
	if err := build().Snapshot(&s1); err != nil {
		t.Fatal(err)
	}
	if err := build().Snapshot(&s2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
		t.Fatal("snapshots not byte-identical")
	}
}

func TestRestoreIntoNonEmpty(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	b.Put("x", "k", []byte("v"))
	db.ApplyUpdates(b, Version{BlockNum: 1})
	if _, err := db.Restore(strings.NewReader("")); err == nil {
		t.Fatal("restore into non-empty db accepted")
	}
}

func TestRestoreRejectsGarbage(t *testing.T) {
	db := New()
	if _, err := db.Restore(strings.NewReader("garbage\n")); err == nil {
		t.Fatal("garbage restored")
	}
}

func TestSnapshotEmptyDB(t *testing.T) {
	var buf bytes.Buffer
	if err := New().Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatalf("empty snapshot has %d bytes", buf.Len())
	}
	n, err := New().Restore(&buf)
	if err != nil || n != 0 {
		t.Fatalf("n=%d err=%v", n, err)
	}
}
