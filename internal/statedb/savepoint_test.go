package statedb

import (
	"bytes"
	"testing"

	"socialchain/internal/storage"
)

func savepointUpdates(val string) []TxUpdate {
	b := NewUpdateBatch()
	b.Put("cc", "k", []byte(val))
	return []TxUpdate{{Batch: b, Version: Version{BlockNum: 1}}}
}

// TestSavepointTracksApplyBlockAt: the savepoint advances with every
// ApplyBlockAt — including blocks with no writes — and is absent on a
// fresh database.
func TestSavepointTracksApplyBlockAt(t *testing.T) {
	db := New()
	if _, ok := db.Savepoint(); ok {
		t.Fatal("fresh db has a savepoint")
	}
	db.ApplyBlockAt(savepointUpdates("v1"), 1)
	if sp, ok := db.Savepoint(); !ok || sp != 1 {
		t.Fatalf("savepoint = %d/%v, want 1", sp, ok)
	}
	// An empty block still advances the savepoint.
	db.ApplyBlockAt(nil, 2)
	if sp, ok := db.Savepoint(); !ok || sp != 2 {
		t.Fatalf("savepoint after empty block = %d/%v, want 2", sp, ok)
	}
	// Plain ApplyBlock (no height) leaves it untouched.
	db.ApplyBlock(savepointUpdates("v2"))
	if sp, _ := db.Savepoint(); sp != 2 {
		t.Fatalf("ApplyBlock moved savepoint to %d", sp)
	}
}

// TestSavepointInvisibleToStateAPIs: the reserved key never shows up in
// namespaces, scans or snapshots — a peer that tracks recovery state and
// one that does not must stay byte-identical.
func TestSavepointInvisibleToStateAPIs(t *testing.T) {
	with := New()
	with.ApplyBlockAt(savepointUpdates("v"), 1)
	without := New()
	without.ApplyBlock(savepointUpdates("v"))

	if ns := with.Namespaces(); len(ns) != 1 || ns[0] != "cc" {
		t.Fatalf("namespaces = %v", ns)
	}
	var a, b bytes.Buffer
	if err := with.Snapshot(&a); err != nil {
		t.Fatal(err)
	}
	if err := without.Snapshot(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("savepoint leaked into snapshot:\nwith:    %s\nwithout: %s", a.Bytes(), b.Bytes())
	}
}

// TestSavepointAtomicWithBlockBatch: on the persist engine the savepoint
// rides in the same WAL record as the block's writes, so a reopened
// database either has both or neither.
func TestSavepointAtomicWithBlockBatch(t *testing.T) {
	dir := t.TempDir()
	cfg := storage.Config{Engine: storage.EnginePersist, Dir: dir}
	db, err := NewWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	db.ApplyBlockAt(savepointUpdates("v1"), 1)
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := NewWith(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	sp, ok := re.Savepoint()
	if !ok || sp != 1 {
		t.Fatalf("reopened savepoint = %d/%v, want 1", sp, ok)
	}
	if vv, ok := re.GetState("cc", "k"); !ok || string(vv.Value) != "v1" {
		t.Fatalf("reopened state = %q/%v", vv.Value, ok)
	}
}
