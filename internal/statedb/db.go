package statedb

import (
	"encoding/binary"
	"strings"

	"socialchain/internal/storage"
)

// DB is the in-memory versioned world state, layered over a pluggable
// storage.KV engine. With the default sharded engine, reads from
// concurrent clients proceed against independent lock stripes while block
// commits take each stripe lock once — mirroring Fabric's state database
// semantics (LevelDB/CouchDB) without the seed's single global RWMutex.
//
// Namespacing and versions are encoded into the flat key-value space:
// composite keys are "ns\x00key", values carry a fixed 16-byte
// (BlockNum, TxNum) header before the payload.
type DB struct {
	kv storage.KV
	// idx maintains the optional secondary indexes on a dedicated engine
	// (nil when no IndexSpec is configured). See index.go.
	idx *indexer
}

// New returns an empty world state on the default (sharded) engine.
func New() *DB {
	return NewWith(storage.Config{})
}

// NewWith returns an empty world state on the engine cfg selects.
func NewWith(cfg storage.Config) *DB {
	return &DB{kv: storage.Open(cfg)}
}

// NewIndexedWith returns an empty world state on the engine cfg selects,
// maintaining the given secondary indexes (held on a second engine of the
// same configuration).
func NewIndexedWith(cfg storage.Config, specs ...IndexSpec) (*DB, error) {
	db := NewWith(cfg)
	if err := db.BuildIndexes(cfg, specs...); err != nil {
		return nil, err
	}
	return db, nil
}

// stateKey builds the composite engine key for ns/key. The NUL separator
// follows the repo-wide "ns\x00key" idiom (chaincode keys never contain
// NUL bytes).
func stateKey(ns, key string) string {
	return ns + "\x00" + key
}

// splitStateKey undoes stateKey.
func splitStateKey(composite string) (ns, key string) {
	if i := strings.IndexByte(composite, 0); i >= 0 {
		return composite[:i], composite[i+1:]
	}
	return composite, ""
}

// versionHeaderLen is the encoded-value prefix carrying the version.
const versionHeaderLen = 16

// encodeValue prepends the version header to a fresh copy of value, giving
// the engine an owned buffer (copy-on-write, as the seed's DB did).
func encodeValue(value []byte, v Version) []byte {
	buf := make([]byte, versionHeaderLen+len(value))
	binary.BigEndian.PutUint64(buf[0:8], v.BlockNum)
	binary.BigEndian.PutUint64(buf[8:16], v.TxNum)
	copy(buf[versionHeaderLen:], value)
	return buf
}

// decodeValue splits a stored buffer into its version and payload; the
// payload aliases the stored buffer, which is never mutated in place.
func decodeValue(buf []byte) VersionedValue {
	return VersionedValue{
		Value: buf[versionHeaderLen:],
		Version: Version{
			BlockNum: binary.BigEndian.Uint64(buf[0:8]),
			TxNum:    binary.BigEndian.Uint64(buf[8:16]),
		},
	}
}

// GetState returns the value of key in ns.
func (db *DB) GetState(ns, key string) (VersionedValue, bool) {
	buf, ok := db.kv.Get(stateKey(ns, key))
	if !ok {
		return VersionedValue{}, false
	}
	return decodeValue(buf), true
}

// GetVersion returns only the version of a key.
func (db *DB) GetVersion(ns, key string) (Version, bool) {
	vv, ok := db.GetState(ns, key)
	return vv.Version, ok
}

// ApplyUpdates commits a batch at the given block height. TxNum in each
// write's version is assigned from the batch entries' staged versions; the
// caller provides the per-transaction version. The engine applies the
// whole batch with one lock acquisition per touched stripe. Secondary
// index mutations are derived from the same batch (old values are read
// before it lands) and applied engine-batch-atomically right after the
// state writes.
func (db *DB) ApplyUpdates(batch *UpdateBatch, v Version) {
	var idxWrites []storage.Write
	if db.idx != nil {
		idxWrites = db.idx.batchWrites(db, batch)
	}
	writes := make([]storage.Write, 0, batch.Len())
	for ns, kvs := range batch.updates {
		for key, w := range kvs {
			if w.IsDelete {
				writes = append(writes, storage.Write{Key: stateKey(ns, key), Delete: true})
				continue
			}
			writes = append(writes, storage.Write{Key: stateKey(ns, key), Value: encodeValue(w.Value, v)})
		}
	}
	db.kv.ApplyBatch(writes)
	if len(idxWrites) > 0 {
		db.idx.kv.ApplyBatch(idxWrites)
	}
}

// TxUpdate pairs one transaction's update batch with its commit version,
// the unit of the block-level apply below.
type TxUpdate struct {
	Batch   *UpdateBatch
	Version Version
}

// ApplyBlock commits every valid transaction of one block in a single
// engine pass: per-transaction batches are merged in block order (a later
// transaction's write to the same key wins, matching sequential
// ApplyUpdates), each surviving write keeps the version of the
// transaction that produced it, and the secondary-index mutations are
// derived once against pre-block state — intermediate intra-block values
// never hit the engine, so old-value reads for index maintenance stay
// correct. One ApplyBatch per engine (state, then indexes) replaces the
// per-transaction lock round-trips of the serial commit path.
func (db *DB) ApplyBlock(updates []TxUpdate) {
	if len(updates) == 0 {
		return
	}
	if len(updates) == 1 {
		db.ApplyUpdates(updates[0].Batch, updates[0].Version)
		return
	}
	merged := NewUpdateBatch()
	versions := make(map[string]Version)
	for _, u := range updates {
		for ns, kvs := range u.Batch.updates {
			for key, w := range kvs {
				merged.stage(w)
				versions[stateKey(ns, key)] = u.Version
			}
		}
	}
	var idxWrites []storage.Write
	if db.idx != nil {
		idxWrites = db.idx.batchWrites(db, merged)
	}
	writes := make([]storage.Write, 0, merged.Len())
	for ns, kvs := range merged.updates {
		for key, w := range kvs {
			sk := stateKey(ns, key)
			if w.IsDelete {
				writes = append(writes, storage.Write{Key: sk, Delete: true})
				continue
			}
			writes = append(writes, storage.Write{Key: sk, Value: encodeValue(w.Value, versions[sk])})
		}
	}
	db.kv.ApplyBatch(writes)
	if len(idxWrites) > 0 {
		db.idx.kv.ApplyBatch(idxWrites)
	}
}

// iterNamespace walks ns in ascending key order, calling fn with the bare
// (un-prefixed) key; fn returning false stops the walk.
func (db *DB) iterNamespace(ns, prefix string, fn func(key string, vv VersionedValue) bool) {
	nsPrefix := stateKey(ns, prefix)
	skip := len(ns) + 1
	db.kv.IterPrefix(nsPrefix, func(composite string, buf []byte) bool {
		return fn(composite[skip:], decodeValue(buf))
	})
}

// GetStateRange returns keys in [startKey, endKey) of ns in sorted order.
// Empty startKey means from the beginning; empty endKey means to the end.
func (db *DB) GetStateRange(ns, startKey, endKey string) []KV {
	var out []KV
	db.iterNamespace(ns, "", func(key string, vv VersionedValue) bool {
		if key < startKey {
			return true
		}
		if endKey != "" && key >= endKey {
			return false // keys arrive sorted; nothing further can match
		}
		out = append(out, KV{Namespace: ns, Key: key, Value: append([]byte(nil), vv.Value...), Version: vv.Version})
		return true
	})
	return out
}

// GetStateByPrefix returns all keys of ns beginning with prefix, sorted.
func (db *DB) GetStateByPrefix(ns, prefix string) []KV {
	var out []KV
	db.iterNamespace(ns, prefix, func(key string, vv VersionedValue) bool {
		out = append(out, KV{Namespace: ns, Key: key, Value: append([]byte(nil), vv.Value...), Version: vv.Version})
		return true
	})
	return out
}

// Keys returns the number of keys stored in ns.
func (db *DB) Keys(ns string) int {
	n := 0
	db.iterNamespace(ns, "", func(string, VersionedValue) bool {
		n++
		return true
	})
	return n
}

// Namespaces lists the namespaces present, sorted.
func (db *DB) Namespaces() []string {
	var out []string
	db.kv.IterPrefix("", func(composite string, _ []byte) bool {
		ns, _ := splitStateKey(composite)
		if len(out) == 0 || out[len(out)-1] != ns {
			out = append(out, ns)
		}
		return true
	})
	return out
}
