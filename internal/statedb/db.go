package statedb

import (
	"sort"
	"strings"
	"sync"
)

// DB is the in-memory versioned world state. It is safe for concurrent use;
// reads proceed under a shared lock while commits take the exclusive lock,
// mirroring Fabric's state database semantics (LevelDB/CouchDB).
type DB struct {
	mu   sync.RWMutex
	data map[string]map[string]VersionedValue // ns -> key -> value
}

// New returns an empty world state.
func New() *DB {
	return &DB{data: make(map[string]map[string]VersionedValue)}
}

// GetState returns the value of key in ns.
func (db *DB) GetState(ns, key string) (VersionedValue, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	vv, ok := db.data[ns][key]
	return vv, ok
}

// GetVersion returns only the version of a key.
func (db *DB) GetVersion(ns, key string) (Version, bool) {
	vv, ok := db.GetState(ns, key)
	return vv.Version, ok
}

// ApplyUpdates commits a batch at the given block height. TxNum in each
// write's version is assigned from the batch entries' staged versions; the
// caller provides the per-transaction version.
func (db *DB) ApplyUpdates(batch *UpdateBatch, v Version) {
	db.mu.Lock()
	defer db.mu.Unlock()
	for ns, kvs := range batch.updates {
		m, ok := db.data[ns]
		if !ok {
			m = make(map[string]VersionedValue)
			db.data[ns] = m
		}
		for key, w := range kvs {
			if w.IsDelete {
				delete(m, key)
				continue
			}
			m[key] = VersionedValue{Value: append([]byte(nil), w.Value...), Version: v}
		}
	}
}

// GetStateRange returns keys in [startKey, endKey) of ns in sorted order.
// Empty startKey means from the beginning; empty endKey means to the end.
func (db *DB) GetStateRange(ns, startKey, endKey string) []KV {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := db.data[ns]
	keys := make([]string, 0, len(m))
	for k := range m {
		if k < startKey {
			continue
		}
		if endKey != "" && k >= endKey {
			continue
		}
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]KV, 0, len(keys))
	for _, k := range keys {
		vv := m[k]
		out = append(out, KV{Namespace: ns, Key: k, Value: append([]byte(nil), vv.Value...), Version: vv.Version})
	}
	return out
}

// GetStateByPrefix returns all keys of ns beginning with prefix, sorted.
func (db *DB) GetStateByPrefix(ns, prefix string) []KV {
	db.mu.RLock()
	defer db.mu.RUnlock()
	m := db.data[ns]
	keys := make([]string, 0, len(m))
	for k := range m {
		if strings.HasPrefix(k, prefix) {
			keys = append(keys, k)
		}
	}
	sort.Strings(keys)
	out := make([]KV, 0, len(keys))
	for _, k := range keys {
		vv := m[k]
		out = append(out, KV{Namespace: ns, Key: k, Value: append([]byte(nil), vv.Value...), Version: vv.Version})
	}
	return out
}

// Keys returns the number of keys stored in ns.
func (db *DB) Keys(ns string) int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.data[ns])
}

// Namespaces lists the namespaces present, sorted.
func (db *DB) Namespaces() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.data))
	for ns := range db.data {
		out = append(out, ns)
	}
	sort.Strings(out)
	return out
}
