package statedb

import (
	"encoding/binary"
	"fmt"
	"strings"

	"socialchain/internal/obs"
	"socialchain/internal/storage"
)

// DB is the in-memory versioned world state, layered over a pluggable
// storage.KV engine. With the default sharded engine, reads from
// concurrent clients proceed against independent lock stripes while block
// commits take each stripe lock once — mirroring Fabric's state database
// semantics (LevelDB/CouchDB) without the seed's single global RWMutex.
//
// Namespacing and versions are encoded into the flat key-value space:
// composite keys are "ns\x00key", values carry a fixed 16-byte
// (BlockNum, TxNum) header before the payload.
type DB struct {
	kv storage.KV
	// idx maintains the optional secondary indexes on a dedicated engine
	// (nil when no IndexSpec is configured). See index.go.
	idx *indexer
}

// New returns an empty world state on the default (sharded) engine. It
// panics if the default engine cannot open — only possible when the
// engine env override is broken, a programming/environment error.
func New() *DB {
	db, err := NewWith(storage.Config{})
	if err != nil {
		panic(err)
	}
	return db
}

// NewWith returns a world state on the engine cfg selects. Durable
// configs place the state engine under the "db" sub-directory of
// cfg.Dir (history and indexes get siblings), and reopen whatever state
// that directory already holds.
func NewWith(cfg storage.Config) (*DB, error) {
	kv, err := storage.Open(cfg.Sub("db"))
	if err != nil {
		return nil, fmt.Errorf("statedb: %w", err)
	}
	return &DB{kv: kv}, nil
}

// NewIndexedWith returns a world state on the engine cfg selects,
// maintaining the given secondary indexes (held on a second engine of the
// same configuration, under the "index" sub-directory for durable
// configs). Indexes are always rebuilt from the recovered state, so a
// crash between a state batch and its index batch can never leave them
// permanently out of sync.
func NewIndexedWith(cfg storage.Config, specs ...IndexSpec) (*DB, error) {
	db, err := NewWith(cfg)
	if err != nil {
		return nil, err
	}
	if err := db.BuildIndexes(cfg, specs...); err != nil {
		db.Close() // release the already-open state engine
		return nil, err
	}
	return db, nil
}

// Close releases the underlying engines after a final flush.
func (db *DB) Close() error {
	err := db.kv.Close()
	if db.idx != nil {
		if ierr := db.idx.kv.Close(); err == nil {
			err = ierr
		}
	}
	return err
}

// Sync flushes the underlying engines to stable storage.
func (db *DB) Sync() error {
	err := db.kv.Sync()
	if db.idx != nil {
		if ierr := db.idx.kv.Sync(); err == nil {
			err = ierr
		}
	}
	return err
}

// StorageStats snapshots the LSM persist engine beneath the state store.
// ok is false when the state sits on a non-LSM engine (in-memory or the
// map-plus-WAL baseline), which expose no comparable internals.
func (db *DB) StorageStats() (storage.PersistStats, bool) {
	p, ok := db.kv.(*storage.Persist)
	if !ok {
		return storage.PersistStats{}, false
	}
	return p.Stats(), true
}

// RegisterStorage exports the underlying LSM engine's metrics (sstable
// and level counts, compaction backlog, bloom hit rates, fsync totals)
// on reg. No-op for engines without internals worth exporting; safe on a
// nil registry.
func (db *DB) RegisterStorage(reg *obs.Registry) {
	if p, ok := db.kv.(*storage.Persist); ok {
		p.Register(reg)
	}
}

// stateKey builds the composite engine key for ns/key. The NUL separator
// follows the repo-wide "ns\x00key" idiom (chaincode keys never contain
// NUL bytes).
func stateKey(ns, key string) string {
	return ns + "\x00" + key
}

// reservedPrefix marks engine keys that are statedb bookkeeping, not
// chaincode state: chaincode namespaces are never empty, so no composite
// state key can start with NUL. Reserved keys are invisible to
// Namespaces, Snapshot and every namespace iteration.
const reservedPrefix = "\x00"

// savepointKey stores the number of the last block whose writes were
// applied, updated atomically with each block's state batch (one engine
// ApplyBatch — on the persist engine, one WAL record). Recovery replays
// the durable block log strictly after this height.
const savepointKey = reservedPrefix + "savepoint"

// Savepoint returns the last block height recorded by ApplyBlockAt, and
// whether one has been recorded at all.
func (db *DB) Savepoint() (uint64, bool) {
	buf, ok := db.kv.Get(savepointKey)
	if !ok || len(buf) != 8 {
		return 0, false
	}
	return binary.BigEndian.Uint64(buf), true
}

// splitStateKey undoes stateKey.
func splitStateKey(composite string) (ns, key string) {
	if i := strings.IndexByte(composite, 0); i >= 0 {
		return composite[:i], composite[i+1:]
	}
	return composite, ""
}

// versionHeaderLen is the encoded-value prefix carrying the version.
const versionHeaderLen = 16

// encodeValue prepends the version header to a fresh copy of value, giving
// the engine an owned buffer (copy-on-write, as the seed's DB did).
func encodeValue(value []byte, v Version) []byte {
	buf := make([]byte, versionHeaderLen+len(value))
	binary.BigEndian.PutUint64(buf[0:8], v.BlockNum)
	binary.BigEndian.PutUint64(buf[8:16], v.TxNum)
	copy(buf[versionHeaderLen:], value)
	return buf
}

// decodeValue splits a stored buffer into its version and payload; the
// payload aliases the stored buffer, which is never mutated in place.
func decodeValue(buf []byte) VersionedValue {
	return VersionedValue{
		Value: buf[versionHeaderLen:],
		Version: Version{
			BlockNum: binary.BigEndian.Uint64(buf[0:8]),
			TxNum:    binary.BigEndian.Uint64(buf[8:16]),
		},
	}
}

// GetState returns the value of key in ns.
func (db *DB) GetState(ns, key string) (VersionedValue, bool) {
	buf, ok := db.kv.Get(stateKey(ns, key))
	if !ok {
		return VersionedValue{}, false
	}
	return decodeValue(buf), true
}

// GetVersion returns only the version of a key.
func (db *DB) GetVersion(ns, key string) (Version, bool) {
	vv, ok := db.GetState(ns, key)
	return vv.Version, ok
}

// ApplyUpdates commits a batch at the given block height. TxNum in each
// write's version is assigned from the batch entries' staged versions; the
// caller provides the per-transaction version. The engine applies the
// whole batch with one lock acquisition per touched stripe. Secondary
// index mutations are derived from the same batch (old values are read
// before it lands) and applied engine-batch-atomically right after the
// state writes.
func (db *DB) ApplyUpdates(batch *UpdateBatch, v Version) {
	var idxWrites []storage.Write
	if db.idx != nil {
		idxWrites = db.idx.batchWrites(db, batch)
	}
	writes := make([]storage.Write, 0, batch.Len())
	for ns, kvs := range batch.updates {
		for key, w := range kvs {
			if w.IsDelete {
				writes = append(writes, storage.Write{Key: stateKey(ns, key), Delete: true})
				continue
			}
			writes = append(writes, storage.Write{Key: stateKey(ns, key), Value: encodeValue(w.Value, v)})
		}
	}
	db.kv.ApplyBatch(writes)
	if len(idxWrites) > 0 {
		db.idx.kv.ApplyBatch(idxWrites)
	}
}

// TxUpdate pairs one transaction's update batch with its commit version,
// the unit of the block-level apply below.
type TxUpdate struct {
	Batch   *UpdateBatch
	Version Version
}

// ApplyBlock commits every valid transaction of one block in a single
// engine pass: per-transaction batches are merged in block order (a later
// transaction's write to the same key wins, matching sequential
// ApplyUpdates), each surviving write keeps the version of the
// transaction that produced it, and the secondary-index mutations are
// derived once against pre-block state — intermediate intra-block values
// never hit the engine, so old-value reads for index maintenance stay
// correct. One ApplyBatch per engine (state, then indexes) replaces the
// per-transaction lock round-trips of the serial commit path.
func (db *DB) ApplyBlock(updates []TxUpdate) {
	if len(updates) == 0 {
		return
	}
	// Same code path as ApplyBlockAt (minus the savepoint) so the two
	// entry points cannot drift behaviorally.
	db.applyBlock(updates, nil)
}

// ApplyBlockAt is ApplyBlock for committers that track recovery state: it
// additionally records height under the reserved savepoint key, INSIDE
// the same engine batch as the block's writes. On a durable engine the
// whole batch is one atomic WAL record, so after a crash the state either
// reflects the block and the savepoint or neither — the invariant that
// lets recovery replay the block log from the savepoint without
// double-applying. Unlike ApplyBlock, an empty update set still commits
// (the savepoint must advance past blocks that wrote nothing).
func (db *DB) ApplyBlockAt(updates []TxUpdate, height uint64) {
	sp := make([]byte, 8)
	binary.BigEndian.PutUint64(sp, height)
	db.applyBlock(updates, sp)
}

// applyBlock merges, versions and lands one block's updates, optionally
// with a savepoint write riding in the same engine batch.
func (db *DB) applyBlock(updates []TxUpdate, savepoint []byte) {
	merged := NewUpdateBatch()
	versions := make(map[string]Version)
	for _, u := range updates {
		for ns, kvs := range u.Batch.updates {
			for key, w := range kvs {
				merged.stage(w)
				versions[stateKey(ns, key)] = u.Version
			}
		}
	}
	var idxWrites []storage.Write
	if db.idx != nil && merged.Len() > 0 {
		idxWrites = db.idx.batchWrites(db, merged)
	}
	writes := make([]storage.Write, 0, merged.Len()+1)
	for ns, kvs := range merged.updates {
		for key, w := range kvs {
			sk := stateKey(ns, key)
			if w.IsDelete {
				writes = append(writes, storage.Write{Key: sk, Delete: true})
				continue
			}
			writes = append(writes, storage.Write{Key: sk, Value: encodeValue(w.Value, versions[sk])})
		}
	}
	if savepoint != nil {
		writes = append(writes, storage.Write{Key: savepointKey, Value: savepoint})
	}
	db.kv.ApplyBatch(writes)
	if len(idxWrites) > 0 {
		db.idx.kv.ApplyBatch(idxWrites)
	}
}

// iterNamespace walks ns in ascending key order, calling fn with the bare
// (un-prefixed) key; fn returning false stops the walk.
func (db *DB) iterNamespace(ns, prefix string, fn func(key string, vv VersionedValue) bool) {
	nsPrefix := stateKey(ns, prefix)
	skip := len(ns) + 1
	db.kv.IterPrefix(nsPrefix, func(composite string, buf []byte) bool {
		return fn(composite[skip:], decodeValue(buf))
	})
}

// GetStateRange returns keys in [startKey, endKey) of ns in sorted order.
// Empty startKey means from the beginning; empty endKey means to the end.
func (db *DB) GetStateRange(ns, startKey, endKey string) []KV {
	var out []KV
	db.iterNamespace(ns, "", func(key string, vv VersionedValue) bool {
		if key < startKey {
			return true
		}
		if endKey != "" && key >= endKey {
			return false // keys arrive sorted; nothing further can match
		}
		out = append(out, KV{Namespace: ns, Key: key, Value: append([]byte(nil), vv.Value...), Version: vv.Version})
		return true
	})
	return out
}

// GetStateByPrefix returns all keys of ns beginning with prefix, sorted.
func (db *DB) GetStateByPrefix(ns, prefix string) []KV {
	var out []KV
	db.iterNamespace(ns, prefix, func(key string, vv VersionedValue) bool {
		out = append(out, KV{Namespace: ns, Key: key, Value: append([]byte(nil), vv.Value...), Version: vv.Version})
		return true
	})
	return out
}

// Keys returns the number of keys stored in ns.
func (db *DB) Keys(ns string) int {
	n := 0
	db.iterNamespace(ns, "", func(string, VersionedValue) bool {
		n++
		return true
	})
	return n
}

// Namespaces lists the namespaces present, sorted. Reserved bookkeeping
// keys (the savepoint) are not state and are skipped.
func (db *DB) Namespaces() []string {
	var out []string
	db.kv.IterPrefix("", func(composite string, _ []byte) bool {
		if strings.HasPrefix(composite, reservedPrefix) {
			return true
		}
		ns, _ := splitStateKey(composite)
		if len(out) == 0 || out[len(out)-1] != ns {
			out = append(out, ns)
		}
		return true
	})
	return out
}
