package statedb

import (
	"fmt"
	"sync/atomic"
	"testing"

	"socialchain/internal/storage"
)

// benchEngines lists the engine configs every statedb benchmark compares.
var benchEngines = []struct {
	name string
	cfg  storage.Config
}{
	{"single", storage.Config{Engine: storage.EngineSingle}},
	{"sharded", storage.Config{Engine: storage.EngineSharded}},
}

func seededBenchDB(b *testing.B, cfg storage.Config, keys int) *DB {
	b.Helper()
	db := NewWith(cfg)
	batch := NewUpdateBatch()
	for i := 0; i < keys; i++ {
		doc := fmt.Sprintf(`{"label":"car","confidence":%f,"idx":%d}`, float64(i%100)/100, i)
		batch.Put("data", fmt.Sprintf("rec/%06d", i), []byte(doc))
	}
	db.ApplyUpdates(batch, Version{BlockNum: 1})
	return db
}

func benchRecKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("rec/%06d", i)
	}
	return keys
}

func BenchmarkGetState(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db := seededBenchDB(b, e.cfg, 10000)
			keys := benchRecKeys(10000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.GetState("data", keys[i%len(keys)])
			}
		})
	}
}

func BenchmarkApplyUpdates(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db := NewWith(e.cfg)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := NewUpdateBatch()
				for j := 0; j < 10; j++ {
					batch.Put("data", fmt.Sprintf("k%d-%d", i, j), []byte("value"))
				}
				db.ApplyUpdates(batch, Version{BlockNum: uint64(i)})
			}
		})
	}
}

func BenchmarkRangeScan(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db := seededBenchDB(b, e.cfg, 10000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.GetStateRange("data", "rec/001000", "rec/002000")
			}
		})
	}
}

func BenchmarkSelectorQuery(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db := seededBenchDB(b, e.cfg, 2000)
			sel := Selector{"confidence": map[string]any{"$gt": 0.5}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.ExecuteQuery("data", sel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelMixedReadCommit compares engines under the paper's
// concurrent-clients regime at the world-state level: parallel GetState
// traffic with block commits (ApplyUpdates) landing underneath. One in 16
// operations commits a 10-write block.
func BenchmarkParallelMixedReadCommit(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db := seededBenchDB(b, e.cfg, 10000)
			keys := benchRecKeys(10000)
			var blockNum atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if i%16 == 15 {
						n := blockNum.Add(1)
						batch := NewUpdateBatch()
						for j := 0; j < 10; j++ {
							batch.Put("data", keys[(int(n)*10+j)%len(keys)], []byte(`{"label":"car"}`))
						}
						db.ApplyUpdates(batch, Version{BlockNum: n})
					} else {
						db.GetState("data", keys[(i*31)%len(keys)])
					}
					i++
				}
			})
		})
	}
}
