package statedb

import (
	"fmt"
	"sync/atomic"
	"testing"

	"socialchain/internal/storage"
)

// benchEngines lists the engine configs every statedb benchmark compares.
// The persist config gets a per-run temp directory so WAL writes land in
// the benchmark's own scratch space.
var benchEngines = []struct {
	name string
	cfg  func(b *testing.B) storage.Config
}{
	{"single", func(*testing.B) storage.Config { return storage.Config{Engine: storage.EngineSingle} }},
	{"sharded", func(*testing.B) storage.Config { return storage.Config{Engine: storage.EngineSharded} }},
	{"persist", func(b *testing.B) storage.Config {
		return storage.Config{Engine: storage.EnginePersist, Dir: b.TempDir()}
	}},
}

func seededBenchDB(b *testing.B, cfg storage.Config, keys int) *DB {
	b.Helper()
	db, err := NewWith(cfg)
	if err != nil {
		b.Fatal(err)
	}
	batch := NewUpdateBatch()
	for i := 0; i < keys; i++ {
		doc := fmt.Sprintf(`{"label":"car","confidence":%f,"idx":%d}`, float64(i%100)/100, i)
		batch.Put("data", fmt.Sprintf("rec/%06d", i), []byte(doc))
	}
	db.ApplyUpdates(batch, Version{BlockNum: 1})
	return db
}

func benchRecKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("rec/%06d", i)
	}
	return keys
}

func BenchmarkGetState(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db := seededBenchDB(b, e.cfg(b), 10000)
			keys := benchRecKeys(10000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.GetState("data", keys[i%len(keys)])
			}
		})
	}
}

func BenchmarkApplyUpdates(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db, err := NewWith(e.cfg(b))
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				batch := NewUpdateBatch()
				for j := 0; j < 10; j++ {
					batch.Put("data", fmt.Sprintf("k%d-%d", i, j), []byte("value"))
				}
				db.ApplyUpdates(batch, Version{BlockNum: uint64(i)})
			}
		})
	}
}

func BenchmarkRangeScan(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db := seededBenchDB(b, e.cfg(b), 10000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				db.GetStateRange("data", "rec/001000", "rec/002000")
			}
		})
	}
}

func BenchmarkSelectorQuery(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db := seededBenchDB(b, e.cfg(b), 2000)
			sel := Selector{"confidence": map[string]any{"$gt": 0.5}}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := db.ExecuteQuery("data", sel); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// seededIndexedBenchDB spreads `keys` records over 25 labels with the
// production-shaped index set, so one label matches keys/25 records.
func seededIndexedBenchDB(b *testing.B, cfg storage.Config, keys int) *DB {
	b.Helper()
	db, err := NewIndexedWith(cfg,
		IndexSpec{Name: "label", Namespace: "data", Field: "label"},
		IndexSpec{Name: "camera", Namespace: "data", Field: "meta.camera"},
		IndexSpec{Name: "at", Namespace: "data", Field: "at"},
	)
	if err != nil {
		b.Fatal(err)
	}
	batch := NewUpdateBatch()
	for i := 0; i < keys; i++ {
		doc := fmt.Sprintf(`{"label":"label-%02d","meta":{"camera":"cam-%d"},"at":"2026-07-%02dT10:00:00Z","idx":%d}`,
			i%25, i%10, 1+i%28, i)
		batch.Put("data", fmt.Sprintf("rec/%06d", i), []byte(doc))
	}
	db.ApplyUpdates(batch, Version{BlockNum: 1})
	return db
}

// BenchmarkIndexedByLabel measures the hot conditional-retrieval path:
// a selector pinning an indexed field, served by the index short-circuit.
// Compare with BenchmarkScanByLabel — the same query forced down the
// full-scan path.
func BenchmarkIndexedByLabel(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db := seededIndexedBenchDB(b, e.cfg(b), 10000)
			sel := Selector{"label": "label-07"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := db.ExecuteQuery("data", sel)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != 400 {
					b.Fatalf("got %d results", len(out))
				}
			}
		})
	}
}

// BenchmarkScanByLabel is the O(namespace) JSON-decoding baseline for the
// same query BenchmarkIndexedByLabel serves from the index.
func BenchmarkScanByLabel(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db := seededIndexedBenchDB(b, e.cfg(b), 10000)
			sel := Selector{"label": "label-07"}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				out, err := db.ScanQuery("data", sel)
				if err != nil {
					b.Fatal(err)
				}
				if len(out) != 400 {
					b.Fatalf("got %d results", len(out))
				}
			}
		})
	}
}

// BenchmarkIterIndexPage measures raw index paging (no record fetch).
func BenchmarkIterIndexPage(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db := seededIndexedBenchDB(b, e.cfg(b), 10000)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				page, err := db.IterIndex("label", "label-07", 100, 0, "")
				if err != nil {
					b.Fatal(err)
				}
				if len(page.Entries) != 100 {
					b.Fatalf("got %d entries", len(page.Entries))
				}
			}
		})
	}
}

// BenchmarkParallelMixedReadCommit compares engines under the paper's
// concurrent-clients regime at the world-state level: parallel GetState
// traffic with block commits (ApplyUpdates) landing underneath. One in 16
// operations commits a 10-write block.
func BenchmarkParallelMixedReadCommit(b *testing.B) {
	for _, e := range benchEngines {
		b.Run(e.name, func(b *testing.B) {
			db := seededBenchDB(b, e.cfg(b), 10000)
			keys := benchRecKeys(10000)
			var blockNum atomic.Uint64
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if i%16 == 15 {
						n := blockNum.Add(1)
						batch := NewUpdateBatch()
						for j := 0; j < 10; j++ {
							batch.Put("data", keys[(int(n)*10+j)%len(keys)], []byte(`{"label":"car"}`))
						}
						db.ApplyUpdates(batch, Version{BlockNum: n})
					} else {
						db.GetState("data", keys[(i*31)%len(keys)])
					}
					i++
				}
			})
		})
	}
}
