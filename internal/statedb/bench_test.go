package statedb

import (
	"fmt"
	"testing"
)

func seededBenchDB(b *testing.B, keys int) *DB {
	b.Helper()
	db := New()
	batch := NewUpdateBatch()
	for i := 0; i < keys; i++ {
		doc := fmt.Sprintf(`{"label":"car","confidence":%f,"idx":%d}`, float64(i%100)/100, i)
		batch.Put("data", fmt.Sprintf("rec/%06d", i), []byte(doc))
	}
	db.ApplyUpdates(batch, Version{BlockNum: 1})
	return db
}

func BenchmarkGetState(b *testing.B) {
	db := seededBenchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.GetState("data", fmt.Sprintf("rec/%06d", i%10000))
	}
}

func BenchmarkApplyUpdates(b *testing.B) {
	db := New()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		batch := NewUpdateBatch()
		for j := 0; j < 10; j++ {
			batch.Put("data", fmt.Sprintf("k%d-%d", i, j), []byte("value"))
		}
		db.ApplyUpdates(batch, Version{BlockNum: uint64(i)})
	}
}

func BenchmarkRangeScan(b *testing.B) {
	db := seededBenchDB(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db.GetStateRange("data", "rec/001000", "rec/002000")
	}
}

func BenchmarkSelectorQuery(b *testing.B) {
	db := seededBenchDB(b, 2000)
	sel := Selector{"confidence": map[string]any{"$gt": 0.5}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := db.ExecuteQuery("data", sel); err != nil {
			b.Fatal(err)
		}
	}
}
