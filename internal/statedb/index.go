package statedb

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"socialchain/internal/storage"
)

// Secondary indexes turn the hot conditional-retrieval queries (by label,
// source, camera, time window) from O(namespace) JSON-decoding scans into
// prefix iterations over small composite keys — the CouchDB-index pattern
// Fabric deployments lean on for read scalability. Indexes live on their
// own storage.KV engine beside the world state: they never appear in
// snapshots, range scans or MVCC read sets, and are rebuilt (not copied)
// when a snapshot is restored, so index configuration can never change the
// bytes two peers compare for state equality.
//
// Index entry layout (one entry per indexed key):
//
//	<index-name> \x00 escape(<field-value>) \x00 <state-key>
//
// escape() makes the value NUL-free (\x00 -> \x01\x01, \x01 -> \x01\x02),
// so the first NUL after the name delimits the value and the state key may
// contain anything (composite keys legally embed NULs). Entries therefore
// sort by (value, key), which makes an index over a timestamp field a
// time-ordered index for free.
//
// Consistency: ApplyUpdates computes index mutations from the same batch
// that mutates the world state and applies them engine-batch-atomically
// right after it. A reader racing a commit can momentarily observe fresh
// state with a stale index or vice versa — the same read-skew class the
// sharded engine's cross-stripe iteration already admits (see
// storage/sharded.go). Consumers tolerate it the same way: the indexed
// query path re-fetches every candidate record and re-checks the full
// selector against current state, so stale entries filter out and the
// MVCC layer above catches anything that mattered to a transaction.

// IndexSpec declares one secondary index over a namespace. Only string
// field values are indexed: JSON object values whose Field (a dotted path,
// e.g. "metadata.camera_id") resolves to a string get one entry; numbers,
// booleans, nested objects and non-object values are skipped, which keeps
// index lookups exactly equivalent to the selector scan for string
// equality (cross-type numeric equality falls back to the scan path).
type IndexSpec struct {
	// Name identifies the index; unique across all specs of a DB.
	Name string
	// Namespace is the world-state namespace the index covers.
	Namespace string
	// Field is the dotted JSON path of the indexed value.
	Field string
}

// IndexEntry is one (value, key) pair of an index page.
type IndexEntry struct {
	// Value is the indexed field value.
	Value string
	// Key is the world-state key of the indexed record.
	Key string
}

// IndexPage is one page of an index iteration.
type IndexPage struct {
	Entries []IndexEntry
	// Next is an opaque resume token: pass it to the next IterIndex call
	// to continue after the last entry. Empty when the iteration is
	// exhausted.
	Next string
}

// indexer maintains a DB's secondary indexes on a dedicated engine.
type indexer struct {
	kv     storage.KV
	byNS   map[string][]IndexSpec
	byName map[string]IndexSpec
}

func newIndexer(cfg storage.Config, specs []IndexSpec) (*indexer, error) {
	// Durable configs put the index engine beside the world state's "db"
	// sub-directory. Its contents are advisory: BuildIndexes rebuilds from
	// state on open, so a crash that split a state batch from its index
	// batch heals here.
	kv, err := storage.Open(cfg.Sub("index"))
	if err != nil {
		return nil, fmt.Errorf("statedb: index: %w", err)
	}
	ix := &indexer{
		kv:     kv,
		byNS:   make(map[string][]IndexSpec),
		byName: make(map[string]IndexSpec),
	}
	for _, spec := range specs {
		var serr error
		switch {
		case spec.Name == "" || spec.Namespace == "" || spec.Field == "":
			serr = fmt.Errorf("statedb: index spec %+v: name, namespace and field are all required", spec)
		case strings.IndexByte(spec.Name, 0) >= 0:
			serr = fmt.Errorf("statedb: index name %q contains reserved NUL", spec.Name)
		default:
			if _, dup := ix.byName[spec.Name]; dup {
				serr = fmt.Errorf("statedb: duplicate index name %q", spec.Name)
			}
		}
		if serr != nil {
			kv.Close() // release the engine opened above
			return nil, serr
		}
		ix.byName[spec.Name] = spec
		ix.byNS[spec.Namespace] = append(ix.byNS[spec.Namespace], spec)
	}
	return ix, nil
}

// escapeIndexValue makes a field value NUL-free so it can be delimited
// inside a composite entry key. The mapping is injective; ordering among
// escaped values is not relied upon beyond equality of full values.
func escapeIndexValue(s string) string {
	if !strings.ContainsAny(s, "\x00\x01") {
		return s
	}
	var b strings.Builder
	b.Grow(len(s) + 2)
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case 0x00:
			b.WriteByte(0x01)
			b.WriteByte(0x01)
		case 0x01:
			b.WriteByte(0x01)
			b.WriteByte(0x02)
		default:
			b.WriteByte(s[i])
		}
	}
	return b.String()
}

// unescapeIndexValue reverses escapeIndexValue.
func unescapeIndexValue(s string) string {
	if strings.IndexByte(s, 0x01) < 0 {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	for i := 0; i < len(s); i++ {
		if s[i] == 0x01 && i+1 < len(s) {
			i++
			if s[i] == 0x01 {
				b.WriteByte(0x00)
			} else {
				b.WriteByte(0x01)
			}
			continue
		}
		b.WriteByte(s[i])
	}
	return b.String()
}

// entryKey builds the composite entry key for one indexed record.
func entryKey(index, value, stateKey string) string {
	return index + "\x00" + escapeIndexValue(value) + "\x00" + stateKey
}

// splitEntry recovers (value, stateKey) from an entry key's suffix after
// the "name\x00" prefix. The escaped value is NUL-free, so the first NUL
// is the delimiter even when the state key embeds NULs.
func splitEntry(suffix string) (value, stateKey string, ok bool) {
	i := strings.IndexByte(suffix, 0)
	if i < 0 {
		return "", "", false
	}
	return unescapeIndexValue(suffix[:i]), suffix[i+1:], true
}

// extractString resolves a dotted path in doc to a string value.
func extractString(doc map[string]any, path string) (string, bool) {
	v, ok := lookupField(doc, path)
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

// docOf decodes a stored value into a JSON object, or nil when the value
// is not one (non-JSON, scalar, array — all unindexable).
func docOf(value []byte) map[string]any {
	var doc map[string]any
	if err := json.Unmarshal(value, &doc); err != nil {
		return nil
	}
	return doc
}

// batchWrites computes the index mutations for one update batch against
// the committed state (old values are read before the batch applies).
func (ix *indexer) batchWrites(db *DB, batch *UpdateBatch) []storage.Write {
	var out []storage.Write
	for ns, kvs := range batch.updates {
		specs := ix.byNS[ns]
		if len(specs) == 0 {
			continue
		}
		for key, w := range kvs {
			var oldDoc, newDoc map[string]any
			if vv, ok := db.GetState(ns, key); ok {
				oldDoc = docOf(vv.Value)
			}
			if !w.IsDelete {
				newDoc = docOf(w.Value)
			}
			if oldDoc == nil && newDoc == nil {
				continue
			}
			for _, spec := range specs {
				oldV, oldOK := "", false
				if oldDoc != nil {
					oldV, oldOK = extractString(oldDoc, spec.Field)
				}
				newV, newOK := "", false
				if newDoc != nil {
					newV, newOK = extractString(newDoc, spec.Field)
				}
				if oldOK && newOK && oldV == newV {
					continue // unchanged: avoid a same-key delete+put race in one batch
				}
				if oldOK {
					out = append(out, storage.Write{Key: entryKey(spec.Name, oldV, key), Delete: true})
				}
				if newOK {
					out = append(out, storage.Write{Key: entryKey(spec.Name, newV, key)})
				}
			}
		}
	}
	return out
}

// rebuild drops and reconstructs every index from current state, used
// after Restore and when indexes are added to a populated database.
func (ix *indexer) rebuild(db *DB) {
	var drop []storage.Write
	ix.kv.IterPrefix("", func(key string, _ []byte) bool {
		drop = append(drop, storage.Write{Key: key, Delete: true})
		return true
	})
	ix.kv.ApplyBatch(drop)
	var writes []storage.Write
	for ns, specs := range ix.byNS {
		db.iterNamespace(ns, "", func(key string, vv VersionedValue) bool {
			doc := docOf(vv.Value)
			if doc == nil {
				return true
			}
			for _, spec := range specs {
				if v, ok := extractString(doc, spec.Field); ok {
					writes = append(writes, storage.Write{Key: entryKey(spec.Name, v, key)})
				}
			}
			return true
		})
	}
	ix.kv.ApplyBatch(writes)
}

// BuildIndexes registers secondary indexes on the database and builds them
// from the current state. It must not race commits; call it at assembly
// time (peer construction) or on a quiesced database. Calling it on a DB
// that already has indexes replaces them.
func (db *DB) BuildIndexes(cfg storage.Config, specs ...IndexSpec) error {
	if len(specs) == 0 {
		db.idx = nil
		return nil
	}
	ix, err := newIndexer(cfg, specs)
	if err != nil {
		return err
	}
	ix.rebuild(db)
	db.idx = ix
	return nil
}

// Indexes lists the registered index specs, sorted by name.
func (db *DB) Indexes() []IndexSpec {
	if db.idx == nil {
		return nil
	}
	out := make([]IndexSpec, 0, len(db.idx.byName))
	for _, spec := range db.idx.byName {
		out = append(out, spec)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// encodeIndexToken wraps an entry-key suffix as an opaque printable token.
func encodeIndexToken(suffix string) string {
	return hex.EncodeToString([]byte(suffix))
}

// decodeIndexToken reverses encodeIndexToken.
func decodeIndexToken(token string) (string, error) {
	b, err := hex.DecodeString(token)
	if err != nil {
		return "", fmt.Errorf("statedb: bad index page token: %w", err)
	}
	return string(b), nil
}

// IterIndex pages through index name in (value, key) order, returning
// entries whose indexed value begins with valuePrefix. limit <= 0 means
// unbounded; offset skips entries (after the token position when both are
// given); token resumes after the entry a previous page ended on. The
// page's Next token is set whenever the limit cut the iteration short.
func (db *DB) IterIndex(name, valuePrefix string, limit, offset int, token string) (IndexPage, error) {
	if db.idx == nil {
		return IndexPage{}, fmt.Errorf("statedb: no indexes configured")
	}
	if _, ok := db.idx.byName[name]; !ok {
		return IndexPage{}, fmt.Errorf("statedb: unknown index %q", name)
	}
	after := ""
	if token != "" {
		var err error
		if after, err = decodeIndexToken(token); err != nil {
			return IndexPage{}, err
		}
	}
	prefix := name + "\x00" + escapeIndexValue(valuePrefix)
	skip := len(name) + 1
	var page IndexPage
	lastSuffix := ""
	db.idx.kv.IterPrefix(prefix, func(composite string, _ []byte) bool {
		suffix := composite[skip:]
		if after != "" && suffix <= after {
			return true
		}
		if offset > 0 {
			offset--
			return true
		}
		if limit > 0 && len(page.Entries) == limit {
			page.Next = encodeIndexToken(lastSuffix)
			return false
		}
		value, key, ok := splitEntry(suffix)
		if !ok {
			return true
		}
		page.Entries = append(page.Entries, IndexEntry{Value: value, Key: key})
		lastSuffix = suffix
		return true
	})
	return page, nil
}

// indexedCandidates returns the state keys an index names for one of the
// supported selector shapes, or ok=false when the selector cannot be
// served from an index (not a string pin, NUL bytes, unsupported ops).
func (ix *indexer) indexedCandidates(ns string, sel Selector) ([]string, bool) {
	for _, spec := range ix.byNS[ns] {
		cond, present := sel[spec.Field]
		if !present {
			continue
		}
		switch c := cond.(type) {
		case string:
			if keys, ok := ix.exactKeys(spec.Name, c); ok {
				return keys, true
			}
		case map[string]any:
			if eq, ok := c["$eq"].(string); ok {
				if keys, ok := ix.exactKeys(spec.Name, eq); ok {
					return keys, true
				}
				continue
			}
			if list, ok := c["$in"].([]any); ok {
				if keys, ok := ix.inKeys(spec.Name, list); ok {
					return keys, true
				}
				continue
			}
			if keys, ok := ix.rangeKeys(spec.Name, c); ok {
				return keys, true
			}
		}
	}
	return nil, false
}

// exactKeys lists keys indexed under exactly value.
func (ix *indexer) exactKeys(index, value string) ([]string, bool) {
	if strings.IndexByte(value, 0) >= 0 {
		// NUL-bearing selector values fall back to the scan so escaping
		// can never change equality semantics.
		return nil, false
	}
	prefix := index + "\x00" + escapeIndexValue(value) + "\x00"
	skip := len(index) + 1
	keys := []string{}
	ix.kv.IterPrefix(prefix, func(composite string, _ []byte) bool {
		if _, key, ok := splitEntry(composite[skip:]); ok {
			keys = append(keys, key)
		}
		return true
	})
	return keys, true
}

// inKeys unions exact lookups for an all-string $in list.
func (ix *indexer) inKeys(index string, list []any) ([]string, bool) {
	var keys []string
	seen := make(map[string]bool)
	for _, item := range list {
		s, ok := item.(string)
		if !ok {
			// A numeric list item could loose-match numeric field values
			// the index never sees; only pure string lists short-circuit.
			return nil, false
		}
		ks, ok := ix.exactKeys(index, s)
		if !ok {
			return nil, false
		}
		for _, k := range ks {
			if !seen[k] {
				seen[k] = true
				keys = append(keys, k)
			}
		}
	}
	if keys == nil {
		keys = []string{}
	}
	return keys, true
}

// rangeOps are the operators rangeKeys can serve from an ordered index.
var rangeOps = map[string]bool{"$gt": true, "$gte": true, "$lt": true, "$lte": true}

// rangeKeys serves a pure string-range condition ({"$gte": lo, "$lt": hi}
// and friends) from the index: candidates are entries whose decoded value
// satisfies every bound. Any non-range operator or non-string operand
// falls back to the scan.
func (ix *indexer) rangeKeys(index string, cond map[string]any) ([]string, bool) {
	if len(cond) == 0 {
		return nil, false
	}
	for op, operand := range cond {
		if !rangeOps[op] {
			return nil, false
		}
		if _, ok := operand.(string); !ok {
			return nil, false
		}
	}
	inRange := func(v string) bool {
		for op, operand := range cond {
			bound := operand.(string)
			switch op {
			case "$gt":
				if !(v > bound) {
					return false
				}
			case "$gte":
				if !(v >= bound) {
					return false
				}
			case "$lt":
				if !(v < bound) {
					return false
				}
			default: // $lte
				if !(v <= bound) {
					return false
				}
			}
		}
		return true
	}
	skip := len(index) + 1
	keys := []string{}
	ix.kv.IterPrefix(index+"\x00", func(composite string, _ []byte) bool {
		value, key, ok := splitEntry(composite[skip:])
		if ok && inRange(value) {
			keys = append(keys, key)
		}
		return true
	})
	return keys, true
}
