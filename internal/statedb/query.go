package statedb

import (
	"encoding/json"
	"fmt"
	"sort"
)

// Selector is a CouchDB-style rich query over JSON values stored in the
// world state. Each field maps to either a literal (equality) or an
// operator object: {"$gt": v, "$gte": v, "$lt": v, "$lte": v, "$ne": v,
// "$in": [v...]}. All fields must match (implicit AND). This covers the
// conditional metadata queries (by label, time window, location) that the
// paper's query engine forwards to the blockchain executor.
type Selector map[string]any

// ExecuteQuery returns entries of ns whose JSON value matches the
// selector. Non-JSON values never match. Results are sorted by key.
//
// When the selector pins a secondary-indexed field — string equality,
// an all-string $in, or a pure string-range condition — the query is
// served from the index: candidate keys come from an O(index) prefix
// iteration and only candidates are decoded and re-checked against the
// full selector, instead of JSON-decoding the whole namespace. Arbitrary
// selectors fall back to ScanQuery.
func (db *DB) ExecuteQuery(ns string, sel Selector) ([]KV, error) {
	if db.idx != nil {
		if candidates, ok := db.idx.indexedCandidates(ns, sel); ok {
			// The scan surfaces operator errors while evaluating records;
			// the index path may evaluate none (zero candidates), so reject
			// malformed selectors up front rather than silently succeeding.
			if err := checkSelector(sel); err != nil {
				return nil, err
			}
			return db.matchCandidates(ns, candidates, sel)
		}
	}
	return db.ScanQuery(ns, sel)
}

// checkSelector statically validates a selector's operators and operand
// shapes (the conditions applyOp reports errors for).
func checkSelector(sel Selector) error {
	for _, cond := range sel {
		c, ok := cond.(map[string]any)
		if !ok {
			continue // literal equality, always valid
		}
		for op, operand := range c {
			switch op {
			case "$exists", "$ne", "$eq", "$gt", "$gte", "$lt", "$lte":
			case "$in":
				if _, ok := operand.([]any); !ok {
					return fmt.Errorf("statedb: $in operand must be a list, got %T", operand)
				}
			default:
				return fmt.Errorf("statedb: unsupported query operator %q", op)
			}
		}
	}
	return nil
}

// matchCandidates fetches each candidate key and keeps those whose current
// value still matches the full selector (stale index entries filter out
// here), returning results in key order as the scan path does.
func (db *DB) matchCandidates(ns string, keys []string, sel Selector) ([]KV, error) {
	sort.Strings(keys)
	var out []KV
	for _, key := range keys {
		vv, ok := db.GetState(ns, key)
		if !ok {
			continue
		}
		var doc map[string]any
		if err := json.Unmarshal(vv.Value, &doc); err != nil {
			continue
		}
		ok, err := Matches(doc, sel)
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, KV{Namespace: ns, Key: key, Value: append([]byte(nil), vv.Value...), Version: vv.Version})
		}
	}
	return out, nil
}

// ScanQuery is the index-free query path: a full namespace scan that
// JSON-decodes every value. It streams off the engine iterator, so
// non-matching values are never copied out of the store. Kept exported as
// the reference implementation for index-equivalence tests and benchmarks.
func (db *DB) ScanQuery(ns string, sel Selector) ([]KV, error) {
	var out []KV
	var ierr error
	db.iterNamespace(ns, "", func(key string, vv VersionedValue) bool {
		var doc map[string]any
		if err := json.Unmarshal(vv.Value, &doc); err != nil {
			return true
		}
		ok, err := Matches(doc, sel)
		if err != nil {
			ierr = err
			return false
		}
		if ok {
			out = append(out, KV{Namespace: ns, Key: key, Value: append([]byte(nil), vv.Value...), Version: vv.Version})
		}
		return true
	})
	if ierr != nil {
		return nil, ierr
	}
	return out, nil
}

// Matches reports whether doc satisfies the selector.
func Matches(doc map[string]any, sel Selector) (bool, error) {
	for field, cond := range sel {
		val, present := lookupField(doc, field)
		switch c := cond.(type) {
		case map[string]any:
			for op, operand := range c {
				ok, err := applyOp(op, val, present, operand)
				if err != nil {
					return false, err
				}
				if !ok {
					return false, nil
				}
			}
		default:
			if !present || !looseEqual(val, cond) {
				return false, nil
			}
		}
	}
	return true, nil
}

// lookupField supports dotted paths ("location.latitude").
func lookupField(doc map[string]any, path string) (any, bool) {
	cur := any(doc)
	start := 0
	for i := 0; i <= len(path); i++ {
		if i == len(path) || path[i] == '.' {
			seg := path[start:i]
			m, ok := cur.(map[string]any)
			if !ok {
				return nil, false
			}
			cur, ok = m[seg]
			if !ok {
				return nil, false
			}
			start = i + 1
		}
	}
	return cur, true
}

func applyOp(op string, val any, present bool, operand any) (bool, error) {
	switch op {
	case "$exists":
		want, _ := operand.(bool)
		return present == want, nil
	case "$ne":
		return !present || !looseEqual(val, operand), nil
	case "$eq":
		return present && looseEqual(val, operand), nil
	case "$in":
		list, ok := operand.([]any)
		if !ok {
			return false, fmt.Errorf("statedb: $in operand must be a list, got %T", operand)
		}
		if !present {
			return false, nil
		}
		for _, item := range list {
			if looseEqual(val, item) {
				return true, nil
			}
		}
		return false, nil
	case "$gt", "$gte", "$lt", "$lte":
		if !present {
			return false, nil
		}
		cmp, ok := compare(val, operand)
		if !ok {
			return false, nil
		}
		switch op {
		case "$gt":
			return cmp > 0, nil
		case "$gte":
			return cmp >= 0, nil
		case "$lt":
			return cmp < 0, nil
		default:
			return cmp <= 0, nil
		}
	default:
		return false, fmt.Errorf("statedb: unsupported query operator %q", op)
	}
}

// looseEqual compares JSON scalars, treating all numbers as float64.
func looseEqual(a, b any) bool {
	if af, aok := toFloat(a); aok {
		bf, bok := toFloat(b)
		return bok && af == bf
	}
	return a == b
}

// compare returns -1/0/1 for ordered scalars (numbers or strings).
func compare(a, b any) (int, bool) {
	if af, ok := toFloat(a); ok {
		bf, ok := toFloat(b)
		if !ok {
			return 0, false
		}
		switch {
		case af < bf:
			return -1, true
		case af > bf:
			return 1, true
		default:
			return 0, true
		}
	}
	as, ok := a.(string)
	if !ok {
		return 0, false
	}
	bs, ok := b.(string)
	if !ok {
		return 0, false
	}
	switch {
	case as < bs:
		return -1, true
	case as > bs:
		return 1, true
	default:
		return 0, true
	}
}

func toFloat(v any) (float64, bool) {
	switch n := v.(type) {
	case float64:
		return n, true
	case float32:
		return float64(n), true
	case int:
		return float64(n), true
	case int64:
		return float64(n), true
	case uint64:
		return float64(n), true
	case json.Number:
		f, err := n.Float64()
		return f, err == nil
	default:
		return 0, false
	}
}
