// Package statedb implements the world-state database of the permissioned
// blockchain: a versioned key-value store (versions are block/tx heights,
// as in Fabric) with range scans, JSON selector queries in the style of
// CouchDB rich queries, per-key history, and read/write sets for MVCC
// validation of transactions.
package statedb

import "fmt"

// Version is the commit height at which a key was last written: the block
// number and the transaction's position within that block. MVCC validation
// compares versions observed at simulation time against commit time.
type Version struct {
	BlockNum uint64 `json:"block_num"`
	TxNum    uint64 `json:"tx_num"`
}

// Compare orders versions lexicographically by (BlockNum, TxNum).
func (v Version) Compare(o Version) int {
	switch {
	case v.BlockNum < o.BlockNum:
		return -1
	case v.BlockNum > o.BlockNum:
		return 1
	case v.TxNum < o.TxNum:
		return -1
	case v.TxNum > o.TxNum:
		return 1
	default:
		return 0
	}
}

// String renders "block:tx".
func (v Version) String() string { return fmt.Sprintf("%d:%d", v.BlockNum, v.TxNum) }

// VersionedValue is a stored value together with its commit version.
type VersionedValue struct {
	Value   []byte
	Version Version
}

// KV is one key-value result of a scan or query.
type KV struct {
	Namespace string
	Key       string
	Value     []byte
	Version   Version
}
