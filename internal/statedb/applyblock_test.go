package statedb

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"socialchain/internal/storage"
)

// dumpState captures every (key, value, version) of a namespace.
func dumpState(db *DB, ns string) []KV {
	return db.GetStateRange(ns, "", "")
}

// dumpIndex captures every entry of an index.
func dumpIndex(t *testing.T, db *DB, name string) []IndexEntry {
	t.Helper()
	var out []IndexEntry
	token := ""
	for {
		page, err := db.IterIndex(name, "", 100, 0, token)
		if err != nil {
			t.Fatalf("IterIndex %s: %v", name, err)
		}
		out = append(out, page.Entries...)
		if page.Next == "" {
			return out
		}
		token = page.Next
	}
}

// TestApplyBlockEquivalentToSequentialApplies drives randomized blocks of
// per-transaction batches (with intra-block same-key collisions and
// deletes) through ApplyBlock on one DB and sequential ApplyUpdates on
// another, across both storage engines, and requires identical state and
// identical secondary indexes.
func TestApplyBlockEquivalentToSequentialApplies(t *testing.T) {
	specs := []IndexSpec{{Name: "by-label", Namespace: "data", Field: "label"}}
	for _, engine := range []storage.Engine{storage.EngineSingle, storage.EngineSharded} {
		t.Run(string(engine), func(t *testing.T) {
			rng := rand.New(rand.NewSource(42))
			cfg := storage.Config{Engine: engine}
			seq, err := NewIndexedWith(cfg, specs...)
			if err != nil {
				t.Fatal(err)
			}
			blk, err := NewIndexedWith(cfg, specs...)
			if err != nil {
				t.Fatal(err)
			}
			keys := make([]string, 24)
			for i := range keys {
				keys[i] = fmt.Sprintf("rec/%03d", i)
			}
			for block := uint64(1); block <= 30; block++ {
				ntx := 1 + rng.Intn(6)
				updates := make([]TxUpdate, 0, ntx)
				for txn := 0; txn < ntx; txn++ {
					b := NewUpdateBatch()
					for w := 0; w < 1+rng.Intn(4); w++ {
						key := keys[rng.Intn(len(keys))]
						if rng.Intn(5) == 0 {
							b.Delete("data", key)
							continue
						}
						doc := fmt.Sprintf(`{"label":"label-%d","n":%d}`, rng.Intn(4), rng.Int())
						b.Put("data", key, []byte(doc))
					}
					updates = append(updates, TxUpdate{
						Batch:   b,
						Version: Version{BlockNum: block, TxNum: uint64(txn)},
					})
				}
				for _, u := range updates {
					seq.ApplyUpdates(u.Batch, u.Version)
				}
				blk.ApplyBlock(updates)

				if got, want := dumpState(blk, "data"), dumpState(seq, "data"); !reflect.DeepEqual(got, want) {
					t.Fatalf("block %d: state diverged:\n got %v\nwant %v", block, got, want)
				}
				if got, want := dumpIndex(t, blk, "by-label"), dumpIndex(t, seq, "by-label"); !reflect.DeepEqual(got, want) {
					t.Fatalf("block %d: index diverged:\n got %v\nwant %v", block, got, want)
				}
			}
		})
	}
}

// TestApplyBlockEmptyAndSingle covers the fast paths.
func TestApplyBlockEmptyAndSingle(t *testing.T) {
	db := New()
	db.ApplyBlock(nil) // must not panic
	b := NewUpdateBatch()
	b.Put("ns", "k", []byte("v"))
	db.ApplyBlock([]TxUpdate{{Batch: b, Version: Version{BlockNum: 3, TxNum: 7}}})
	vv, ok := db.GetState("ns", "k")
	if !ok || string(vv.Value) != "v" {
		t.Fatalf("GetState after single-update ApplyBlock: %v %v", vv, ok)
	}
	if vv.Version != (Version{BlockNum: 3, TxNum: 7}) {
		t.Fatalf("version = %+v", vv.Version)
	}
}

// TestApplyBlockKeepsPerTxVersions checks that each surviving write
// carries the version of the transaction that produced it, and that a
// later transaction's write to the same key wins with its own version.
func TestApplyBlockKeepsPerTxVersions(t *testing.T) {
	db := New()
	b0 := NewUpdateBatch()
	b0.Put("ns", "a", []byte("a0"))
	b0.Put("ns", "shared", []byte("first"))
	b1 := NewUpdateBatch()
	b1.Put("ns", "b", []byte("b1"))
	b1.Put("ns", "shared", []byte("second"))
	db.ApplyBlock([]TxUpdate{
		{Batch: b0, Version: Version{BlockNum: 5, TxNum: 0}},
		{Batch: b1, Version: Version{BlockNum: 5, TxNum: 1}},
	})
	for _, tc := range []struct {
		key, val string
		txn      uint64
	}{
		{"a", "a0", 0},
		{"b", "b1", 1},
		{"shared", "second", 1},
	} {
		vv, ok := db.GetState("ns", tc.key)
		if !ok || string(vv.Value) != tc.val {
			t.Fatalf("key %s: got %q ok=%v, want %q", tc.key, vv.Value, ok, tc.val)
		}
		if vv.Version != (Version{BlockNum: 5, TxNum: tc.txn}) {
			t.Fatalf("key %s: version %+v, want txn %d", tc.key, vv.Version, tc.txn)
		}
	}
}
