package statedb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"testing"
	"testing/quick"
	"time"

	"socialchain/internal/storage"
)

func TestGetPutRoundTrip(t *testing.T) {
	db := New()
	batch := NewUpdateBatch()
	batch.Put("cc", "k1", []byte("v1"))
	db.ApplyUpdates(batch, Version{BlockNum: 1, TxNum: 0})

	vv, ok := db.GetState("cc", "k1")
	if !ok || string(vv.Value) != "v1" {
		t.Fatalf("get = %v %q", ok, vv.Value)
	}
	if vv.Version != (Version{BlockNum: 1, TxNum: 0}) {
		t.Fatalf("version = %v", vv.Version)
	}
}

func TestNamespaceIsolation(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	b.Put("ns1", "k", []byte("a"))
	b.Put("ns2", "k", []byte("b"))
	db.ApplyUpdates(b, Version{BlockNum: 1})
	v1, _ := db.GetState("ns1", "k")
	v2, _ := db.GetState("ns2", "k")
	if string(v1.Value) != "a" || string(v2.Value) != "b" {
		t.Fatal("namespaces bleed")
	}
	if _, ok := db.GetState("ns3", "k"); ok {
		t.Fatal("phantom namespace")
	}
}

func TestDeleteRemovesKey(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	b.Put("cc", "k", []byte("v"))
	db.ApplyUpdates(b, Version{BlockNum: 1})
	b2 := NewUpdateBatch()
	b2.Delete("cc", "k")
	db.ApplyUpdates(b2, Version{BlockNum: 2})
	if _, ok := db.GetState("cc", "k"); ok {
		t.Fatal("deleted key still present")
	}
}

func TestBatchLastWriteWins(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	b.Put("cc", "k", []byte("first"))
	b.Put("cc", "k", []byte("second"))
	if b.Len() != 1 {
		t.Fatalf("batch len %d", b.Len())
	}
	db.ApplyUpdates(b, Version{BlockNum: 1})
	vv, _ := db.GetState("cc", "k")
	if string(vv.Value) != "second" {
		t.Fatalf("value %q", vv.Value)
	}
}

func TestRangeScan(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	for _, k := range []string{"a", "b", "c", "d", "e"} {
		b.Put("cc", k, []byte(k))
	}
	db.ApplyUpdates(b, Version{BlockNum: 1})

	got := db.GetStateRange("cc", "b", "d")
	if len(got) != 2 || got[0].Key != "b" || got[1].Key != "c" {
		t.Fatalf("range [b,d) = %+v", got)
	}
	all := db.GetStateRange("cc", "", "")
	if len(all) != 5 {
		t.Fatalf("open range returned %d", len(all))
	}
	from := db.GetStateRange("cc", "c", "")
	if len(from) != 3 {
		t.Fatalf("range [c,∞) returned %d", len(from))
	}
}

func TestRangeScanSortedProperty(t *testing.T) {
	err := quick.Check(func(keys []string) bool {
		db := New()
		b := NewUpdateBatch()
		for _, k := range keys {
			if k == "" {
				continue
			}
			b.Put("cc", k, []byte("v"))
		}
		db.ApplyUpdates(b, Version{BlockNum: 1})
		got := db.GetStateRange("cc", "", "")
		return sort.SliceIsSorted(got, func(i, j int) bool { return got[i].Key < got[j].Key })
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestPrefixScan(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	for _, k := range []string{"user/alice", "user/bob", "admin/root"} {
		b.Put("cc", k, []byte("v"))
	}
	db.ApplyUpdates(b, Version{BlockNum: 1})
	got := db.GetStateByPrefix("cc", "user/")
	if len(got) != 2 {
		t.Fatalf("prefix scan = %d entries", len(got))
	}
}

func TestVersionCompare(t *testing.T) {
	cases := []struct {
		a, b Version
		want int
	}{
		{Version{1, 0}, Version{1, 0}, 0},
		{Version{1, 0}, Version{1, 1}, -1},
		{Version{2, 0}, Version{1, 9}, 1},
		{Version{1, 5}, Version{1, 2}, 1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("%v.Compare(%v) = %d want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestRWSetDigestDeterministic(t *testing.T) {
	rw := RWSet{
		Reads:  []ReadItem{{Namespace: "cc", Key: "a", Version: Version{1, 0}, Exists: true}},
		Writes: []WriteItem{{Namespace: "cc", Key: "b", Value: []byte("v")}},
	}
	if !bytes.Equal(rw.Digest([]byte("r")), rw.Digest([]byte("r"))) {
		t.Fatal("digest unstable")
	}
	if bytes.Equal(rw.Digest([]byte("r")), rw.Digest([]byte("other"))) {
		t.Fatal("digest ignores response")
	}
	rw2 := rw
	rw2.Writes = []WriteItem{{Namespace: "cc", Key: "b", Value: []byte("v2")}}
	if bytes.Equal(rw.Digest([]byte("r")), rw2.Digest([]byte("r"))) {
		t.Fatal("digest ignores writes")
	}
}

func TestSelectorEquality(t *testing.T) {
	db := seedDocs(t)
	got, err := db.ExecuteQuery("cc", Selector{"label": "truck"})
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("matched %d", len(got))
	}
}

func TestSelectorOperators(t *testing.T) {
	db := seedDocs(t)
	cases := []struct {
		sel  Selector
		want int
	}{
		{Selector{"confidence": map[string]any{"$gt": 0.5}}, 2},
		{Selector{"confidence": map[string]any{"$gte": 0.41}}, 3},
		{Selector{"confidence": map[string]any{"$lt": 0.5}}, 1},
		{Selector{"confidence": map[string]any{"$lte": 0.9, "$gt": 0.45}}, 2},
		{Selector{"label": map[string]any{"$ne": "truck"}}, 1},
		{Selector{"label": map[string]any{"$in": []any{"car", "bus"}}}, 1},
		{Selector{"label": map[string]any{"$eq": "truck"}}, 2},
		{Selector{"missing": map[string]any{"$exists": false}}, 3},
		{Selector{"label": map[string]any{"$exists": true}}, 3},
		{Selector{"location.latitude": map[string]any{"$gt": 12.0}}, 3},
		{Selector{"label": "truck", "confidence": map[string]any{"$gt": 0.8}}, 1},
	}
	for i, c := range cases {
		got, err := db.ExecuteQuery("cc", c.sel)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if len(got) != c.want {
			t.Errorf("case %d matched %d, want %d", i, len(got), c.want)
		}
	}
}

func TestSelectorBadOperator(t *testing.T) {
	db := seedDocs(t)
	if _, err := db.ExecuteQuery("cc", Selector{"label": map[string]any{"$regex": "t.*"}}); err == nil {
		t.Fatal("unsupported operator accepted")
	}
	if _, err := db.ExecuteQuery("cc", Selector{"label": map[string]any{"$in": "notalist"}}); err == nil {
		t.Fatal("$in with non-list accepted")
	}
}

func TestSelectorSkipsNonJSON(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	b.Put("cc", "binary", []byte{0xff, 0xfe})
	b.Put("cc", "doc", mustJSON(map[string]any{"label": "x"}))
	db.ApplyUpdates(b, Version{BlockNum: 1})
	got, err := db.ExecuteQuery("cc", Selector{"label": "x"})
	if err != nil || len(got) != 1 {
		t.Fatalf("got %d err %v", len(got), err)
	}
}

func seedDocs(t *testing.T) *DB {
	t.Helper()
	db := New()
	b := NewUpdateBatch()
	docs := []map[string]any{
		{"label": "truck", "confidence": 0.41, "location": map[string]any{"latitude": 12.97, "longitude": 77.59}},
		{"label": "truck", "confidence": 0.88, "location": map[string]any{"latitude": 12.95, "longitude": 77.60}},
		{"label": "car", "confidence": 0.70, "location": map[string]any{"latitude": 13.00, "longitude": 77.58}},
	}
	for i, d := range docs {
		b.Put("cc", fmt.Sprintf("doc%d", i), mustJSON(d))
	}
	db.ApplyUpdates(b, Version{BlockNum: 1})
	return db
}

func mustJSON(v any) []byte {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return b
}

func TestHistoryDB(t *testing.T) {
	h := NewHistoryDB()
	now := time.Now()
	h.Record("cc", "k", HistEntry{TxID: "tx1", Value: []byte("v1"), Version: Version{1, 0}, Timestamp: now})
	h.Record("cc", "k", HistEntry{TxID: "tx2", Value: []byte("v2"), Version: Version{2, 0}, Timestamp: now})
	got := h.Get("cc", "k")
	if len(got) != 2 || got[0].TxID != "tx1" || got[1].TxID != "tx2" {
		t.Fatalf("history = %+v", got)
	}
	if h.Len("cc") != 1 {
		t.Fatalf("Len = %d", h.Len("cc"))
	}
	if len(h.Get("cc", "other")) != 0 {
		t.Fatal("phantom history")
	}
}

func TestHistoryRecordBatch(t *testing.T) {
	h := NewHistoryDB()
	b := NewUpdateBatch()
	b.Put("cc", "k1", []byte("v"))
	b.Delete("cc", "k2")
	h.RecordBatch(b, "tx9", Version{3, 1}, time.Now())
	if got := h.Get("cc", "k1"); len(got) != 1 || got[0].TxID != "tx9" {
		t.Fatalf("k1 history %+v", got)
	}
	if got := h.Get("cc", "k2"); len(got) != 1 || !got[0].IsDelete {
		t.Fatalf("k2 history %+v", got)
	}
}

func TestNamespacesListing(t *testing.T) {
	db := New()
	b := NewUpdateBatch()
	b.Put("zz", "k", []byte("v"))
	b.Put("aa", "k", []byte("v"))
	db.ApplyUpdates(b, Version{BlockNum: 1})
	ns := db.Namespaces()
	if len(ns) != 2 || ns[0] != "aa" || ns[1] != "zz" {
		t.Fatalf("namespaces = %v", ns)
	}
	if db.Keys("aa") != 1 {
		t.Fatalf("Keys = %d", db.Keys("aa"))
	}
}

func TestValueCopiedOnWrite(t *testing.T) {
	db := New()
	val := []byte("mutable")
	b := NewUpdateBatch()
	b.Put("cc", "k", val)
	db.ApplyUpdates(b, Version{BlockNum: 1})
	val[0] = 'X'
	vv, _ := db.GetState("cc", "k")
	if vv.Value[0] == 'X' {
		t.Fatal("db aliases caller buffer")
	}
}

// TestEnginesProduceIdenticalSnapshots commits the same batches through
// both storage engines and requires byte-identical snapshot streams —
// engine choice must never change observable state or iteration order.
func TestEnginesProduceIdenticalSnapshots(t *testing.T) {
	build := func(cfg storage.Config) *DB {
		db, err := NewWith(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for blk := uint64(1); blk <= 5; blk++ {
			b := NewUpdateBatch()
			for i := 0; i < 40; i++ {
				key := fmt.Sprintf("key/%03d", (int(blk)*7+i*3)%60)
				if (int(blk)+i)%5 == 0 {
					b.Delete("cc", key)
				} else {
					b.Put("cc", key, []byte(fmt.Sprintf("v%d-%d", blk, i)))
				}
				b.Put(fmt.Sprintf("ns%d", i%3), key, []byte("x"))
			}
			db.ApplyUpdates(b, Version{BlockNum: blk})
		}
		return db
	}
	var single, sharded, persist bytes.Buffer
	if err := build(storage.Config{Engine: storage.EngineSingle}).Snapshot(&single); err != nil {
		t.Fatal(err)
	}
	if err := build(storage.Config{Engine: storage.EngineSharded}).Snapshot(&sharded); err != nil {
		t.Fatal(err)
	}
	if err := build(storage.Config{Engine: storage.EnginePersist, Dir: t.TempDir()}).Snapshot(&persist); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(single.Bytes(), sharded.Bytes()) {
		t.Fatal("snapshot streams differ between engines")
	}
	if !bytes.Equal(single.Bytes(), persist.Bytes()) {
		t.Fatal("persist snapshot stream differs from in-memory engines")
	}
	db := build(storage.Config{})
	if got := db.Keys("cc"); got == 0 {
		t.Fatal("no keys survived")
	}
	if ns := db.Namespaces(); len(ns) != 4 {
		t.Fatalf("namespaces = %v", ns)
	}
}
