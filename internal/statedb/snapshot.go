package statedb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
)

// snapshotEntry is one key's row in a snapshot stream.
type snapshotEntry struct {
	Namespace string  `json:"ns"`
	Key       string  `json:"key"`
	Value     []byte  `json:"value"`
	Version   Version `json:"version"`
}

// Snapshot writes the full world state as one JSON entry per line, in
// deterministic (namespace, key) order, so two peers at the same height
// produce byte-identical snapshots — a cheap state-equality check and a
// bootstrap artefact. The engine's sorted composite-key iteration IS
// (namespace, key) order, so both engines emit identical streams.
func (db *DB) Snapshot(w io.Writer) error {
	bw := bufio.NewWriter(w)
	var ierr error
	db.kv.IterPrefix("", func(composite string, buf []byte) bool {
		if strings.HasPrefix(composite, reservedPrefix) {
			// Bookkeeping (the commit savepoint) is not state: snapshots
			// stay byte-identical whether or not a peer tracks recovery.
			return true
		}
		ns, key := splitStateKey(composite)
		vv := decodeValue(buf)
		enc, err := json.Marshal(snapshotEntry{Namespace: ns, Key: key, Value: vv.Value, Version: vv.Version})
		if err != nil {
			ierr = fmt.Errorf("statedb: snapshot: %w", err)
			return false
		}
		if _, err := bw.Write(enc); err != nil {
			ierr = err
			return false
		}
		if err := bw.WriteByte('\n'); err != nil {
			ierr = err
			return false
		}
		return true
	})
	if ierr != nil {
		return ierr
	}
	return bw.Flush()
}

// Restore loads a Snapshot stream into an empty database, returning the
// number of keys loaded. Restoring into a non-empty database is an error
// (snapshots are bootstrap artefacts, not merges).
func (db *DB) Restore(r io.Reader) (int, error) {
	if db.kv.Len() != 0 {
		return 0, fmt.Errorf("statedb: restore into non-empty database")
	}
	dec := json.NewDecoder(bufio.NewReader(r))
	n := 0
	for {
		var e snapshotEntry
		if err := dec.Decode(&e); err == io.EOF {
			// Snapshots never carry index entries; rebuild them from the
			// restored state.
			if db.idx != nil {
				db.idx.rebuild(db)
			}
			return n, nil
		} else if err != nil {
			return n, fmt.Errorf("statedb: restore entry %d: %w", n, err)
		}
		db.kv.Put(stateKey(e.Namespace, e.Key), encodeValue(e.Value, e.Version))
		n++
	}
}
