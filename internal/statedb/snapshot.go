package statedb

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// snapshotEntry is one key's row in a snapshot stream.
type snapshotEntry struct {
	Namespace string  `json:"ns"`
	Key       string  `json:"key"`
	Value     []byte  `json:"value"`
	Version   Version `json:"version"`
}

// Snapshot writes the full world state as one JSON entry per line, in
// deterministic (namespace, key) order, so two peers at the same height
// produce byte-identical snapshots — a cheap state-equality check and a
// bootstrap artefact.
func (db *DB) Snapshot(w io.Writer) error {
	db.mu.RLock()
	defer db.mu.RUnlock()
	bw := bufio.NewWriter(w)
	namespaces := make([]string, 0, len(db.data))
	for ns := range db.data {
		namespaces = append(namespaces, ns)
	}
	sort.Strings(namespaces)
	for _, ns := range namespaces {
		m := db.data[ns]
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			vv := m[k]
			enc, err := json.Marshal(snapshotEntry{Namespace: ns, Key: k, Value: vv.Value, Version: vv.Version})
			if err != nil {
				return fmt.Errorf("statedb: snapshot: %w", err)
			}
			if _, err := bw.Write(enc); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Restore loads a Snapshot stream into an empty database, returning the
// number of keys loaded. Restoring into a non-empty database is an error
// (snapshots are bootstrap artefacts, not merges).
func (db *DB) Restore(r io.Reader) (int, error) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if len(db.data) != 0 {
		return 0, fmt.Errorf("statedb: restore into non-empty database")
	}
	dec := json.NewDecoder(bufio.NewReader(r))
	n := 0
	for {
		var e snapshotEntry
		if err := dec.Decode(&e); err == io.EOF {
			return n, nil
		} else if err != nil {
			return n, fmt.Errorf("statedb: restore entry %d: %w", n, err)
		}
		m, ok := db.data[e.Namespace]
		if !ok {
			m = make(map[string]VersionedValue)
			db.data[e.Namespace] = m
		}
		m[e.Key] = VersionedValue{Value: e.Value, Version: e.Version}
		n++
	}
}
