package statedb

import (
	"encoding/json"
	"testing"

	"socialchain/internal/storage"
)

// mustDoc decodes a JSON object literal for Matches tests.
func mustDoc(t *testing.T, s string) map[string]any {
	t.Helper()
	var doc map[string]any
	if err := json.Unmarshal([]byte(s), &doc); err != nil {
		t.Fatalf("bad doc %s: %v", s, err)
	}
	return doc
}

func TestMatchesInMixedNumericTypes(t *testing.T) {
	doc := mustDoc(t, `{"n": 5, "f": 5.0, "s": "5"}`)
	cases := []struct {
		field string
		list  []any
		want  bool
	}{
		// JSON numbers decode to float64; int operands from Go callers
		// must loose-match them.
		{"n", []any{int(5)}, true},
		{"n", []any{int64(5)}, true},
		{"n", []any{float64(5)}, true},
		{"n", []any{float32(5)}, true},
		{"n", []any{uint64(5)}, true},
		{"n", []any{json.Number("5")}, true},
		{"n", []any{json.Number("5.0")}, true},
		{"f", []any{int(5)}, true},
		// Numeric string never equals a number, in either direction.
		{"n", []any{"5"}, false},
		{"s", []any{int(5)}, false},
		{"n", []any{int(4), int(6)}, false},
		{"n", []any{true}, false},
	}
	for _, c := range cases {
		ok, err := Matches(doc, Selector{c.field: map[string]any{"$in": c.list}})
		if err != nil {
			t.Fatalf("$in %v on %s: %v", c.list, c.field, err)
		}
		if ok != c.want {
			t.Fatalf("$in %v on %s = %v, want %v", c.list, c.field, ok, c.want)
		}
	}
}

func TestMatchesInRejectsNonListOperand(t *testing.T) {
	doc := mustDoc(t, `{"n": 5}`)
	if _, err := Matches(doc, Selector{"n": map[string]any{"$in": "not-a-list"}}); err == nil {
		t.Fatal("$in with scalar operand accepted")
	}
}

func TestMatchesDottedPathThroughNonObjects(t *testing.T) {
	doc := mustDoc(t, `{"a": {"b": 1}, "s": "str", "arr": [1,2], "nil": null, "num": 3}`)
	// Paths descending through a scalar, array, null or missing segment
	// resolve to "absent": equality fails, $exists:false succeeds, $ne
	// succeeds (absent != anything).
	for _, path := range []string{"s.x", "arr.0", "nil.x", "num.x.y", "a.b.c", "missing.x"} {
		if ok, err := Matches(doc, Selector{path: float64(1)}); err != nil || ok {
			t.Fatalf("path %s equality = (%v, %v), want (false, nil)", path, ok, err)
		}
		if ok, err := Matches(doc, Selector{path: map[string]any{"$exists": false}}); err != nil || !ok {
			t.Fatalf("path %s $exists:false = (%v, %v), want (true, nil)", path, ok, err)
		}
		if ok, err := Matches(doc, Selector{path: map[string]any{"$ne": float64(1)}}); err != nil || !ok {
			t.Fatalf("path %s $ne = (%v, %v), want (true, nil)", path, ok, err)
		}
		if ok, err := Matches(doc, Selector{path: map[string]any{"$gt": float64(0)}}); err != nil || ok {
			t.Fatalf("path %s $gt on absent = (%v, %v), want (false, nil)", path, ok, err)
		}
	}
	// A path that does resolve still works alongside the broken ones.
	if ok, err := Matches(doc, Selector{"a.b": float64(1)}); err != nil || !ok {
		t.Fatalf("a.b = (%v, %v), want (true, nil)", ok, err)
	}
}

func TestMatchesUnknownOperatorErrors(t *testing.T) {
	doc := mustDoc(t, `{"n": 5}`)
	for _, op := range []string{"$regex", "$nin", "$foo", ""} {
		if _, err := Matches(doc, Selector{"n": map[string]any{op: float64(1)}}); err == nil {
			t.Fatalf("operator %q accepted", op)
		}
	}
	// The error surfaces through both query paths.
	db := New()
	b := NewUpdateBatch()
	b.Put("cc", "k", []byte(`{"n":5}`))
	db.ApplyUpdates(b, Version{BlockNum: 1})
	if _, err := db.ExecuteQuery("cc", Selector{"n": map[string]any{"$foo": float64(1)}}); err == nil {
		t.Fatal("ExecuteQuery swallowed unknown operator")
	}
	if _, err := db.ScanQuery("cc", Selector{"n": map[string]any{"$foo": float64(1)}}); err == nil {
		t.Fatal("ScanQuery swallowed unknown operator")
	}
}

func TestIndexedPathRejectsUnknownOperatorWithoutCandidates(t *testing.T) {
	// The index short-circuit may evaluate zero records (no candidates for
	// the pinned value); malformed operators elsewhere in the selector
	// must still surface instead of silently returning an empty result.
	db, err := NewIndexedWith(storage.Config{}, IndexSpec{Name: "label", Namespace: "data", Field: "label"})
	if err != nil {
		t.Fatal(err)
	}
	b := NewUpdateBatch()
	b.Put("data", "rec/1", []byte(`{"label":"car","x":1}`))
	db.ApplyUpdates(b, Version{BlockNum: 1})
	for _, sel := range []Selector{
		{"label": "no-such-label", "x": map[string]any{"$regex": "a"}},
		{"label": "no-such-label", "x": map[string]any{"$in": "not-a-list"}},
	} {
		if _, err := db.ExecuteQuery("data", sel); err == nil {
			t.Fatalf("indexed path accepted malformed selector %v", sel)
		}
	}
}

func TestMatchesRangeCrossTypeNeverMatches(t *testing.T) {
	doc := mustDoc(t, `{"n": 5, "s": "m"}`)
	// Number vs string bound (and vice versa) is unordered: all range ops
	// are false rather than an error, mirroring CouchDB's type ordering
	// being collapsed to "no match" here.
	for _, sel := range []Selector{
		{"n": map[string]any{"$gt": "a"}},
		{"s": map[string]any{"$lt": float64(9)}},
		{"s": map[string]any{"$gte": true}},
	} {
		if ok, err := Matches(doc, sel); err != nil || ok {
			t.Fatalf("%v = (%v, %v), want (false, nil)", sel, ok, err)
		}
	}
	if ok, err := Matches(doc, Selector{"s": map[string]any{"$gte": "a", "$lt": "z"}}); err != nil || !ok {
		t.Fatalf("string range = (%v, %v), want (true, nil)", ok, err)
	}
}
