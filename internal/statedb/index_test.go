package statedb

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"socialchain/internal/storage"
)

// testIndexes is the spec set the index tests run under, shaped like the
// data-namespace production set (top-level, nested and time fields).
func testIndexes() []IndexSpec {
	return []IndexSpec{
		{Name: "label", Namespace: "data", Field: "label"},
		{Name: "camera", Namespace: "data", Field: "meta.camera"},
		{Name: "at", Namespace: "data", Field: "at"},
	}
}

func indexedTestDB(t *testing.T, cfg storage.Config) *DB {
	t.Helper()
	db, err := NewIndexedWith(cfg, testIndexes()...)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func putDoc(db *DB, block uint64, key, doc string) {
	b := NewUpdateBatch()
	b.Put("data", key, []byte(doc))
	db.ApplyUpdates(b, Version{BlockNum: block})
}

func TestIndexSpecValidation(t *testing.T) {
	if _, err := NewIndexedWith(storage.Config{}, IndexSpec{Name: "", Namespace: "ns", Field: "f"}); err == nil {
		t.Fatal("empty name accepted")
	}
	if _, err := NewIndexedWith(storage.Config{},
		IndexSpec{Name: "dup", Namespace: "ns", Field: "a"},
		IndexSpec{Name: "dup", Namespace: "ns", Field: "b"}); err == nil {
		t.Fatal("duplicate name accepted")
	}
	if _, err := NewIndexedWith(storage.Config{}, IndexSpec{Name: "x\x00y", Namespace: "ns", Field: "f"}); err == nil {
		t.Fatal("NUL in name accepted")
	}
}

func TestIndexMaintenance(t *testing.T) {
	db := indexedTestDB(t, storage.Config{})
	putDoc(db, 1, "rec/1", `{"label":"car","meta":{"camera":"c1"}}`)
	putDoc(db, 2, "rec/2", `{"label":"car"}`)
	putDoc(db, 3, "rec/3", `{"label":"bus","meta":{"camera":"c1"}}`)

	page, err := db.IterIndex("label", "car", 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 2 || page.Entries[0].Key != "rec/1" || page.Entries[1].Key != "rec/2" {
		t.Fatalf("car entries = %+v", page.Entries)
	}
	if page.Next != "" {
		t.Fatalf("unexpected continuation token %q", page.Next)
	}

	// Overwrite flips rec/1 from car to bus; delete drops rec/3 entirely.
	putDoc(db, 4, "rec/1", `{"label":"bus","meta":{"camera":"c2"}}`)
	b := NewUpdateBatch()
	b.Delete("data", "rec/3")
	db.ApplyUpdates(b, Version{BlockNum: 5})

	page, _ = db.IterIndex("label", "car", 0, 0, "")
	if len(page.Entries) != 1 || page.Entries[0].Key != "rec/2" {
		t.Fatalf("after overwrite, car = %+v", page.Entries)
	}
	page, _ = db.IterIndex("label", "bus", 0, 0, "")
	if len(page.Entries) != 1 || page.Entries[0].Key != "rec/1" {
		t.Fatalf("after delete, bus = %+v", page.Entries)
	}
	page, _ = db.IterIndex("camera", "c2", 0, 0, "")
	if len(page.Entries) != 1 || page.Entries[0].Key != "rec/1" {
		t.Fatalf("nested-field index = %+v", page.Entries)
	}
}

func TestIndexIgnoresNonStringAndNonObjectValues(t *testing.T) {
	db := indexedTestDB(t, storage.Config{})
	putDoc(db, 1, "rec/num", `{"label":7}`)
	putDoc(db, 1, "rec/arr", `[1,2,3]`)
	putDoc(db, 1, "rec/raw", `not json`)
	putDoc(db, 1, "rec/ok", `{"label":"car"}`)
	page, err := db.IterIndex("label", "", 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 1 || page.Entries[0].Key != "rec/ok" {
		t.Fatalf("entries = %+v", page.Entries)
	}
}

func TestIterIndexPagination(t *testing.T) {
	db := indexedTestDB(t, storage.Config{})
	for i := 0; i < 10; i++ {
		putDoc(db, uint64(i+1), fmt.Sprintf("rec/%02d", i), fmt.Sprintf(`{"label":"L%d"}`, i%2))
	}
	// Page through label L0 (rec/00,02,04,06,08) two at a time via tokens.
	var got []string
	token := ""
	pages := 0
	for {
		page, err := db.IterIndex("label", "L0", 2, 0, token)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range page.Entries {
			got = append(got, e.Key)
		}
		pages++
		if page.Next == "" {
			break
		}
		token = page.Next
	}
	want := []string{"rec/00", "rec/02", "rec/04", "rec/06", "rec/08"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("paged keys = %v, want %v", got, want)
	}
	if pages < 3 {
		t.Fatalf("expected >= 3 pages of 2, got %d", pages)
	}
	// Offset skips from the front.
	page, err := db.IterIndex("label", "L0", 2, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 2 || page.Entries[0].Key != "rec/06" {
		t.Fatalf("offset page = %+v", page.Entries)
	}
	// Unknown index and bad token are errors.
	if _, err := db.IterIndex("nope", "", 0, 0, ""); err == nil {
		t.Fatal("unknown index accepted")
	}
	if _, err := db.IterIndex("label", "", 0, 0, "zz-not-hex"); err == nil {
		t.Fatal("bad token accepted")
	}
}

func TestIterIndexTimeOrdered(t *testing.T) {
	db := indexedTestDB(t, storage.Config{})
	putDoc(db, 1, "rec/b", `{"at":"2026-07-30T10:00:00Z"}`)
	putDoc(db, 2, "rec/a", `{"at":"2026-07-30T12:00:00Z"}`)
	putDoc(db, 3, "rec/c", `{"at":"2026-07-29T09:00:00Z"}`)
	page, err := db.IterIndex("at", "", 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"rec/c", "rec/b", "rec/a"} // chronological, not key, order
	for i, e := range page.Entries {
		if e.Key != want[i] {
			t.Fatalf("time order = %+v, want %v", page.Entries, want)
		}
	}
}

func TestBuildIndexesRebuildsFromExistingState(t *testing.T) {
	db := New()
	putDoc(db, 1, "rec/1", `{"label":"car"}`)
	putDoc(db, 2, "rec/2", `{"label":"bus"}`)
	if err := db.BuildIndexes(storage.Config{}, testIndexes()...); err != nil {
		t.Fatal(err)
	}
	page, err := db.IterIndex("label", "car", 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 1 || page.Entries[0].Key != "rec/1" {
		t.Fatalf("rebuilt index = %+v", page.Entries)
	}
}

func TestRestoreRebuildsIndexes(t *testing.T) {
	src := indexedTestDB(t, storage.Config{})
	putDoc(src, 1, "rec/1", `{"label":"car"}`)
	putDoc(src, 2, "rec/2", `{"label":"car"}`)

	var buf bytes.Buffer
	if err := src.Snapshot(&buf); err != nil {
		t.Fatal(err)
	}
	dst := indexedTestDB(t, storage.Config{})
	if _, err := dst.Restore(&buf); err != nil {
		t.Fatal(err)
	}
	page, err := dst.IterIndex("label", "car", 0, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	if len(page.Entries) != 2 {
		t.Fatalf("restored index = %+v", page.Entries)
	}
}

func TestExecuteQueryShortCircuitEqualsScan(t *testing.T) {
	for _, engCfg := range []storage.Config{
		{Engine: storage.EngineSingle},
		{Engine: storage.EngineSharded},
		{Engine: storage.EnginePersist, Dir: t.TempDir()},
	} {
		db := indexedTestDB(t, engCfg)
		plain, err := NewWith(storage.Config{Engine: storage.EngineSingle}) // index-free twin: always scans
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(42))
		labels := []string{"car", "bus", "truck", "bike", "x\x00nul", ""}
		cameras := []string{"c1", "c2", "c3"}
		for blk := uint64(1); blk <= 20; blk++ {
			b := NewUpdateBatch()
			for i := 0; i < 50; i++ {
				key := fmt.Sprintf("rec/%03d", rng.Intn(400))
				switch rng.Intn(10) {
				case 0:
					b.Delete("data", key)
				case 1:
					// Numeric label: indexable field with non-string value.
					b.Put("data", key, []byte(fmt.Sprintf(`{"label":%d,"n":%d}`, rng.Intn(3), rng.Intn(100))))
				case 2:
					b.Put("data", key, []byte(`"just a string"`))
				default:
					doc, err := json.Marshal(map[string]any{
						"label": labels[rng.Intn(len(labels))],
						"meta":  map[string]any{"camera": cameras[rng.Intn(len(cameras))]},
						"at":    fmt.Sprintf("2026-07-%02dT0%d:00:00Z", 1+rng.Intn(28), rng.Intn(10)),
						"n":     rng.Intn(100),
					})
					if err != nil {
						t.Fatal(err)
					}
					b.Put("data", key, doc)
				}
			}
			db.ApplyUpdates(b, Version{BlockNum: blk})
			plain.ApplyUpdates(b, Version{BlockNum: blk})
		}
		selectors := []Selector{
			{"label": "car"},
			{"label": "x\x00nul"}, // NUL selector must fall back and still agree
			{"label": ""},
			{"label": "car", "meta.camera": "c2"},
			{"label": map[string]any{"$eq": "bus"}},
			{"label": map[string]any{"$in": []any{"car", "bike"}}},
			{"label": map[string]any{"$in": []any{"car", float64(1)}}}, // mixed list: scan path
			{"at": map[string]any{"$gte": "2026-07-10", "$lt": "2026-07-20"}},
			{"at": map[string]any{"$gt": "2026-07-15T05:00:00Z"}},
			{"meta.camera": "c1", "n": map[string]any{"$gte": float64(50)}},
			{"label": map[string]any{"$ne": "car"}}, // unsupported pin: scan path
			{"n": map[string]any{"$lt": float64(10)}},
		}
		for _, sel := range selectors {
			indexed, err := db.ExecuteQuery("data", sel)
			if err != nil {
				t.Fatalf("engine %s sel %v: indexed: %v", engCfg.Engine, sel, err)
			}
			scanned, err := plain.ExecuteQuery("data", sel)
			if err != nil {
				t.Fatalf("engine %s sel %v: scan: %v", engCfg.Engine, sel, err)
			}
			direct, err := db.ScanQuery("data", sel)
			if err != nil {
				t.Fatalf("engine %s sel %v: direct scan: %v", engCfg.Engine, sel, err)
			}
			if !sameKVs(indexed, scanned) || !sameKVs(indexed, direct) {
				t.Fatalf("engine %s sel %v: indexed %d results, scan %d, direct %d",
					engCfg.Engine, sel, len(indexed), len(scanned), len(direct))
			}
		}
	}
}

func sameKVs(a, b []KV) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Key != b[i].Key || string(a[i].Value) != string(b[i].Value) {
			return false
		}
	}
	return true
}

func TestEscapeIndexValueRoundTrip(t *testing.T) {
	for _, s := range []string{"", "plain", "a\x00b", "\x01", "\x00\x01\x00", "a\x01\x01b"} {
		esc := escapeIndexValue(s)
		for i := 0; i < len(esc); i++ {
			if esc[i] == 0 {
				t.Fatalf("escape(%q) contains NUL", s)
			}
		}
		if got := unescapeIndexValue(esc); got != s {
			t.Fatalf("round trip %q -> %q -> %q", s, esc, got)
		}
	}
}
