package statedb

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"

	"socialchain/internal/obs"
	"socialchain/internal/storage"
)

// HistEntry is one historical update to a key, underpinning the paper's
// provenance feature: an immutable record of every change with its
// transaction and timestamp.
type HistEntry struct {
	TxID      string    `json:"tx_id"`
	Value     []byte    `json:"value,omitempty"`
	IsDelete  bool      `json:"is_delete,omitempty"`
	Version   Version   `json:"version"`
	Timestamp time.Time `json:"timestamp"`
}

// HistoryDB records the full update history of every key. It is an
// append-only index over a storage.KV engine: each update lands under
// "ns\x00key\x00<block><tx>" where the suffix is the entry's commit
// version in fixed-width hex, so a key's history is one sorted prefix
// scan in commit order and appends never read-modify-write (concurrent
// recording from different committers cannot lose entries). Keying by
// commit version — rather than an in-process counter — also makes
// recording idempotent: crash-recovery replay of a block overwrites the
// block's entries with identical bytes instead of duplicating them.
type HistoryDB struct {
	kv storage.KV
}

// NewHistoryDB returns an empty history database on the default engine.
// It panics if the default engine cannot open (broken env override).
func NewHistoryDB() *HistoryDB {
	h, err := NewHistoryDBWith(storage.Config{})
	if err != nil {
		panic(err)
	}
	return h
}

// NewHistoryDBWith returns a history database on the engine cfg selects.
// Durable configs place it under the "history" sub-directory of cfg.Dir,
// beside the world state's "db", and reopen whatever it already holds.
func NewHistoryDBWith(cfg storage.Config) (*HistoryDB, error) {
	kv, err := storage.Open(cfg.Sub("history"))
	if err != nil {
		return nil, fmt.Errorf("statedb: history: %w", err)
	}
	return &HistoryDB{kv: kv}, nil
}

// Close releases the underlying engine after a final flush.
func (h *HistoryDB) Close() error { return h.kv.Close() }

// Sync flushes the underlying engine to stable storage.
func (h *HistoryDB) Sync() error { return h.kv.Sync() }

// StorageStats snapshots the LSM persist engine beneath the history
// store; ok is false for engines without comparable internals.
func (h *HistoryDB) StorageStats() (storage.PersistStats, bool) {
	p, ok := h.kv.(*storage.Persist)
	if !ok {
		return storage.PersistStats{}, false
	}
	return p.Stats(), true
}

// RegisterStorage exports the underlying LSM engine's metrics on reg.
// No-op for non-LSM engines; safe on a nil registry.
func (h *HistoryDB) RegisterStorage(reg *obs.Registry) {
	if p, ok := h.kv.(*storage.Persist); ok {
		p.Register(reg)
	}
}

// histVerLen is the fixed width of each hex version component; fixed
// width keeps lexical key order equal to commit order.
const histVerLen = 16

func histPrefix(ns, key string) string {
	return ns + "\x00" + key + "\x00"
}

// Record appends an update for ns/key at e.Version. Recording the same
// (key, version) twice overwrites — versions are unique per committed
// transaction, so this only happens when crash recovery replays a block.
func (h *HistoryDB) Record(ns, key string, e HistEntry) {
	enc, err := json.Marshal(e)
	if err != nil {
		// HistEntry contains only marshalable fields; treat failure as fatal.
		panic("statedb: history marshal: " + err.Error())
	}
	k := fmt.Sprintf("%s%0*x%0*x", histPrefix(ns, key), histVerLen, e.Version.BlockNum, histVerLen, e.Version.TxNum)
	h.kv.Put(k, enc)
}

// RecordBatch appends history entries for every write in a batch.
func (h *HistoryDB) RecordBatch(batch *UpdateBatch, txID string, v Version, ts time.Time) {
	for ns, kvs := range batch.updates {
		for key, w := range kvs {
			h.Record(ns, key, HistEntry{
				TxID:      txID,
				Value:     append([]byte(nil), w.Value...),
				IsDelete:  w.IsDelete,
				Version:   v,
				Timestamp: ts,
			})
		}
	}
}

// Get returns the full history of ns/key in commit order.
func (h *HistoryDB) Get(ns, key string) []HistEntry {
	var out []HistEntry
	h.kv.IterPrefix(histPrefix(ns, key), func(_ string, buf []byte) bool {
		var e HistEntry
		if err := json.Unmarshal(buf, &e); err != nil {
			panic("statedb: history unmarshal: " + err.Error())
		}
		out = append(out, e)
		return true
	})
	return out
}

// Len returns the number of keys with history in ns.
func (h *HistoryDB) Len(ns string) int {
	prefix := ns + "\x00"
	n := 0
	prev := ""
	h.kv.IterPrefix(prefix, func(composite string, _ []byte) bool {
		// Strip the namespace prefix and the "\x00<version>" suffix to
		// recover the bare key; entries arrive sorted, so distinct keys are
		// counted by comparing neighbours.
		rest := composite[len(prefix):]
		key := rest
		if i := strings.LastIndexByte(rest, 0); i >= 0 {
			key = rest[:i]
		}
		if n == 0 || key != prev {
			n++
			prev = key
		}
		return true
	})
	return n
}
