package statedb

import (
	"sync"
	"time"
)

// HistEntry is one historical update to a key, underpinning the paper's
// provenance feature: an immutable record of every change with its
// transaction and timestamp.
type HistEntry struct {
	TxID      string    `json:"tx_id"`
	Value     []byte    `json:"value,omitempty"`
	IsDelete  bool      `json:"is_delete,omitempty"`
	Version   Version   `json:"version"`
	Timestamp time.Time `json:"timestamp"`
}

// HistoryDB records the full update history of every key.
type HistoryDB struct {
	mu      sync.RWMutex
	entries map[string]map[string][]HistEntry // ns -> key -> updates in commit order
}

// NewHistoryDB returns an empty history database.
func NewHistoryDB() *HistoryDB {
	return &HistoryDB{entries: make(map[string]map[string][]HistEntry)}
}

// Record appends an update for ns/key.
func (h *HistoryDB) Record(ns, key string, e HistEntry) {
	h.mu.Lock()
	defer h.mu.Unlock()
	m, ok := h.entries[ns]
	if !ok {
		m = make(map[string][]HistEntry)
		h.entries[ns] = m
	}
	m[key] = append(m[key], e)
}

// RecordBatch appends history entries for every write in a batch.
func (h *HistoryDB) RecordBatch(batch *UpdateBatch, txID string, v Version, ts time.Time) {
	for ns, kvs := range batch.updates {
		for key, w := range kvs {
			h.Record(ns, key, HistEntry{
				TxID:      txID,
				Value:     append([]byte(nil), w.Value...),
				IsDelete:  w.IsDelete,
				Version:   v,
				Timestamp: ts,
			})
		}
	}
}

// Get returns the full history of ns/key in commit order.
func (h *HistoryDB) Get(ns, key string) []HistEntry {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return append([]HistEntry(nil), h.entries[ns][key]...)
}

// Len returns the number of keys with history in ns.
func (h *HistoryDB) Len(ns string) int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.entries[ns])
}
