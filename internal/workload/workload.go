// Package workload generates benchmark inputs: file-size sweeps matching
// the x-axes of Figures 4-6, payload generators, and arrival processes for
// throughput experiments.
package workload

import (
	"math"
	"time"

	"socialchain/internal/sim"
)

// SizeSweepKB returns a geometric sweep of payload sizes in bytes from
// minKB to maxKB with the given number of points — the file-size axis of
// Figures 5 and 6.
func SizeSweepKB(minKB, maxKB float64, points int) []int {
	if points < 2 {
		return []int{int(minKB * 1024)}
	}
	out := make([]int, points)
	ratio := math.Pow(maxKB/minKB, 1/float64(points-1))
	size := minKB
	for i := 0; i < points; i++ {
		out[i] = int(size * 1024)
		size *= ratio
	}
	return out
}

// DefaultStorageSweep is the sweep used by the Figure 5/6 harnesses:
// 16 KiB to 8 MiB over 10 points.
func DefaultStorageSweep() []int { return SizeSweepKB(16, 8192, 10) }

// Payload produces a pseudo-random payload of the given size. Content is
// incompressible (uniform bytes), the worst case for chunk dedup.
func Payload(rng *sim.RNG, size int) []byte {
	return rng.Bytes(size)
}

// PoissonArrivals yields inter-arrival times for a Poisson process with the
// given rate (events/second). The slice has n entries.
func PoissonArrivals(rng *sim.RNG, ratePerSec float64, n int) []time.Duration {
	if ratePerSec <= 0 {
		ratePerSec = 1
	}
	out := make([]time.Duration, n)
	for i := range out {
		gap := rng.ExpFloat64() / ratePerSec
		out[i] = time.Duration(gap * float64(time.Second))
	}
	return out
}

// Mix describes a trusted/untrusted submission mix for scenario workloads.
type Mix struct {
	// TrustedFraction of submissions originate from trusted sources.
	TrustedFraction float64
	// BadFraction of untrusted submissions are malformed/dishonest.
	BadFraction float64
}

// IsTrusted draws whether the next submission is from a trusted source.
func (m Mix) IsTrusted(rng *sim.RNG) bool { return rng.Float64() < m.TrustedFraction }

// IsBad draws whether an untrusted submission is dishonest.
func (m Mix) IsBad(rng *sim.RNG) bool { return rng.Float64() < m.BadFraction }
