package workload

import (
	"testing"
	"time"

	"socialchain/internal/sim"
)

func TestSizeSweepGeometric(t *testing.T) {
	sweep := SizeSweepKB(16, 8192, 10)
	if len(sweep) != 10 {
		t.Fatalf("points = %d", len(sweep))
	}
	if sweep[0] != 16*1024 {
		t.Fatalf("first = %d", sweep[0])
	}
	if sweep[9] < 8*1024*1024-1024 || sweep[9] > 8*1024*1024+1024 {
		t.Fatalf("last = %d, want ~8 MiB", sweep[9])
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i] <= sweep[i-1] {
			t.Fatal("sweep not increasing")
		}
	}
	// Ratio roughly constant (geometric).
	r1 := float64(sweep[1]) / float64(sweep[0])
	r2 := float64(sweep[9]) / float64(sweep[8])
	if r1/r2 > 1.05 || r2/r1 > 1.05 {
		t.Fatalf("ratios diverge: %f vs %f", r1, r2)
	}
}

func TestSizeSweepDegenerate(t *testing.T) {
	sweep := SizeSweepKB(64, 1024, 1)
	if len(sweep) != 1 || sweep[0] != 64*1024 {
		t.Fatalf("sweep = %v", sweep)
	}
}

func TestDefaultStorageSweep(t *testing.T) {
	sweep := DefaultStorageSweep()
	if len(sweep) != 10 || sweep[0] != 16*1024 {
		t.Fatalf("default sweep = %v", sweep)
	}
}

func TestPayloadSizeAndDeterminism(t *testing.T) {
	a := Payload(sim.NewRNG(1), 1000)
	b := Payload(sim.NewRNG(1), 1000)
	if len(a) != 1000 {
		t.Fatalf("len = %d", len(a))
	}
	if string(a) != string(b) {
		t.Fatal("same seed, different payloads")
	}
}

func TestPoissonArrivals(t *testing.T) {
	rng := sim.NewRNG(2)
	gaps := PoissonArrivals(rng, 100, 1000)
	if len(gaps) != 1000 {
		t.Fatalf("gaps = %d", len(gaps))
	}
	var sum time.Duration
	for _, g := range gaps {
		if g < 0 {
			t.Fatal("negative gap")
		}
		sum += g
	}
	mean := sum / 1000
	// Rate 100/s -> mean gap 10ms; allow 30% tolerance.
	if mean < 7*time.Millisecond || mean > 13*time.Millisecond {
		t.Fatalf("mean gap %v, want ~10ms", mean)
	}
	// Degenerate rate falls back.
	if got := PoissonArrivals(rng, 0, 1); len(got) != 1 {
		t.Fatal("zero rate mishandled")
	}
}

func TestMixDraws(t *testing.T) {
	rng := sim.NewRNG(3)
	m := Mix{TrustedFraction: 0.7, BadFraction: 0.2}
	trusted := 0
	const n = 10000
	for i := 0; i < n; i++ {
		if m.IsTrusted(rng) {
			trusted++
		}
	}
	frac := float64(trusted) / n
	if frac < 0.65 || frac > 0.75 {
		t.Fatalf("trusted fraction %f, want ~0.7", frac)
	}
}
