// Package walframe is the shared record framing of the repo's durable
// logs — the storage engine's WAL segments/snapshots and the ledger's
// block log. One frame is:
//
//	[4B big-endian payload length][4B IEEE CRC32 of payload][payload]
//
// The framing is what makes crash recovery decidable: a frame either
// parses completely with a matching CRC or it does not, and HasValidFrame
// lets a reader discriminate a torn tail (nothing valid after the
// damage; safe to truncate) from mid-log corruption (committed frames
// follow; must fail loudly). Both logs share this code precisely so the
// discriminator cannot drift between them.
package walframe

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
)

// HeaderLen is the fixed frame-header size.
const HeaderLen = 8

// Seal fills in the length+CRC header of frame, whose payload starts at
// HeaderLen (the caller reserved the first HeaderLen bytes). Building
// payloads in place and sealing keeps the append path copy-free.
func Seal(frame []byte) {
	payload := frame[HeaderLen:]
	binary.BigEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(frame[4:8], crc32.ChecksumIEEE(payload))
}

// Next parses the frame beginning at data[off:], returning its payload
// (aliasing data) and the offset just past it. A short or CRC-mismatched
// frame is an error; the caller decides torn-vs-corrupt via
// HasValidFrame on the remainder.
func Next(data []byte, off int) (payload []byte, next int, err error) {
	if len(data)-off < HeaderLen {
		return nil, off, fmt.Errorf("walframe: truncated header at offset %d", off)
	}
	n := int(binary.BigEndian.Uint32(data[off:]))
	sum := binary.BigEndian.Uint32(data[off+4:])
	if n < 0 || len(data)-off-HeaderLen < n {
		return nil, off, fmt.Errorf("walframe: truncated body at offset %d", off)
	}
	payload = data[off+HeaderLen : off+HeaderLen+n]
	if crc32.ChecksumIEEE(payload) != sum {
		return nil, off, fmt.Errorf("walframe: crc mismatch at offset %d", off)
	}
	return payload, off + HeaderLen + n, nil
}

// HasValidFrame reports whether any offset of data parses as a complete
// CRC-valid frame — the discriminator between a torn tail and mid-log
// corruption. A false positive needs a 2^-32 CRC coincidence, so a hit
// is taken as evidence of a once-committed frame.
func HasValidFrame(data []byte) bool {
	for off := 0; off+HeaderLen <= len(data); off++ {
		if _, _, err := Next(data, off); err == nil {
			return true
		}
	}
	return false
}

// RecoverTail repairs a log file whose frames parsed cleanly up to good
// bytes: a genuine torn tail (no complete CRC-valid frame after the
// failure point) is truncated away; anything else is mid-log corruption
// and an error — committed frames are never silently destroyed. Both
// durable logs route their truncate-or-fail decision through here so it
// cannot drift between them.
func RecoverTail(path string, data []byte, good int) error {
	if good >= len(data) {
		return nil
	}
	if HasValidFrame(data[good+1:]) {
		return fmt.Errorf("walframe: %s corrupt at offset %d with committed frames after it", path, good)
	}
	if err := os.Truncate(path, int64(good)); err != nil {
		return fmt.Errorf("walframe: truncate torn tail of %s: %w", path, err)
	}
	return nil
}
