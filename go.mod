module socialchain

go 1.24
