// Integration tests exercising the full stack end to end: blockchain +
// IPFS + chaincodes + trust + query + explorer, under latency models and
// byzantine behaviour — the scenarios the paper's architecture must
// survive, beyond any single package's unit tests.
package socialchain

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"socialchain/internal/consensus"
	"socialchain/internal/core"
	"socialchain/internal/dataset"
	"socialchain/internal/detect"
	"socialchain/internal/explorer"
	"socialchain/internal/fabric"
	"socialchain/internal/ledger"
	"socialchain/internal/msp"
	"socialchain/internal/ordering"
	"socialchain/internal/provenance"
	"socialchain/internal/query"
	"socialchain/internal/sim"
)

// newIntegrationFramework builds a framework with realistic knobs: LAN
// latency, batching > 1, and optionally byzantine validators.
func newIntegrationFramework(t *testing.T, peers int, behaviors map[int]consensus.Behavior) *core.Framework {
	t.Helper()
	rng := sim.NewRNG(99)
	fw, err := core.New(core.Config{
		Fabric: fabric.Config{
			NumPeers:         peers,
			Cutter:           ordering.CutterConfig{MaxMessages: 4, BatchTimeout: 10 * time.Millisecond},
			Latency:          sim.LANLatency(rng),
			Behaviors:        behaviors,
			ConsensusTimeout: time.Second,
		},
		IPFSNodes:   2,
		IPFSLatency: sim.LANLatency(rng.Fork()),
	})
	if err != nil {
		t.Fatalf("core.New: %v", err)
	}
	t.Cleanup(fw.Close)
	return fw
}

func registerSource(t *testing.T, fw *core.Framework, org, name string, trusted bool) *msp.Signer {
	t.Helper()
	role := msp.RoleUntrustedSource
	if trusted {
		role = msp.RoleTrustedSource
	}
	s, err := msp.NewSigner(org, name, role)
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.RegisterSource(s.Identity, trusted); err != nil {
		t.Fatalf("register %s: %v", name, err)
	}
	return s
}

// TestIntegrationSmartCityScenario runs the paper's full story: a camera fleet and a
// drone ingest the corpus through the framework with a byzantine validator
// present; an analyst queries by label and verifies payloads; the explorer
// confirms chain health.
func TestIntegrationSmartCityScenario(t *testing.T) {
	fw := newIntegrationFramework(t, 4, map[int]consensus.Behavior{3: consensus.Silent{}})
	det := detect.NewDetector(42)
	corpus := dataset.Generate(dataset.Config{
		Seed: 42, NumVideos: 2, FramesPerVideo: 3,
		NumDroneFlights: 1, FramesPerFlight: 3, MeanFrameKB: 12,
	})

	var receipts []*core.StoreReceipt
	for i, video := range append(corpus.Static, corpus.Drone...) {
		src := registerSource(t, fw, "city", video.Camera.ID, true)
		client := fw.Client(src, i%2)
		for j := range video.Frames {
			frame := &video.Frames[j]
			meta, _ := det.ExtractMetadata(frame)
			receipt, err := client.StoreFrame(frame, meta)
			if err != nil {
				t.Fatalf("store %s: %v", frame.ID, err)
			}
			receipts = append(receipts, receipt)
		}
	}
	if len(receipts) != 9 {
		t.Fatalf("stored %d, want 9", len(receipts))
	}

	// Analyst: every stored record retrievable and verified via either
	// IPFS node.
	for i, receipt := range receipts {
		qe := fw.QueryEngine(i % 2)
		res, err := qe.Data(receipt.TxID)
		if err != nil {
			t.Fatalf("retrieve %s: %v", receipt.TxID, err)
		}
		if !res.Verified {
			t.Fatalf("record %s not verified", receipt.TxID)
		}
	}

	// Explorer: chain is healthy, data chaincode dominates activity.
	lgr := fw.Net.ChannelAt(0).Peer(0).Ledger()
	waitForHeight(t, fw, lgr.Height())
	exp := explorer.New(lgr)
	if err := exp.VerifyIntegrity(); err != nil {
		t.Fatalf("explorer integrity: %v", err)
	}
	stats := exp.Stats()
	if stats.ByChaincode["data"] != 9 {
		t.Fatalf("explorer counts %d data txs, want 9", stats.ByChaincode["data"])
	}
	if stats.FlagBreakdown[ledger.Valid] < 9 {
		t.Fatalf("valid txs = %d", stats.FlagBreakdown[ledger.Valid])
	}

	// Every label query resolves to records whose metadata agrees.
	qe := fw.QueryEngine(0)
	seen := 0
	for _, label := range detect.VehicleLabels {
		res, err := qe.Execute(query.Request{Kind: query.ByLabel, Value: label})
		if err != nil {
			t.Fatalf("label %s: %v", label, err)
		}
		seen += len(res.Records)
	}
	if seen != 9 {
		t.Fatalf("label queries cover %d records, want 9", seen)
	}
}

// waitForHeight waits for all peers to converge on at least the given
// height (commits propagate asynchronously).
func waitForHeight(t *testing.T, fw *core.Framework, h uint64) {
	t.Helper()
	if !fw.Net.ChannelAt(0).WaitHeight(h, 10*time.Second) {
		t.Fatal("peers did not converge")
	}
}

// TestIntegrationEndorserWatchdogExclusion feeds the committers transactions carrying
// a forged endorsement (valid signature over a wrong digest) until the
// watchdog flags the liar and the gateway stops using it.
func TestIntegrationEndorserWatchdogExclusion(t *testing.T) {
	net, err := fabric.NewNetwork(fabric.Config{
		NumPeers:          4,
		Cutter:            ordering.CutterConfig{MaxMessages: 1, BatchTimeout: 5 * time.Millisecond},
		WatchdogThreshold: 3,
		Policy:            msp.QuorumPolicy{Threshold: 2, Total: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	net.MustDeploy(kvChaincode{})
	net.Start()
	t.Cleanup(net.Stop)

	client, err := msp.NewSigner("clientorg", "carol", msp.RoleMember)
	if err != nil {
		t.Fatal(err)
	}
	liar, err := msp.NewSigner("org9", "liar", msp.RoleMember)
	if err != nil {
		t.Fatal(err)
	}
	gw := net.ChannelAt(0).Gateway(client)

	// Submit transactions whose endorsement set includes a forged
	// endorsement from the liar; each commit reports the liar once per
	// validating peer batch.
	for i := 0; i < 3; i++ {
		tx, err := buildEnvelopeWithLiar(net, gw, client, liar, i)
		if err != nil {
			t.Fatal(err)
		}
		res, err := gw.SubmitEnvelope(*tx)
		if err != nil {
			t.Fatal(err)
		}
		if res.Flag != ledger.Valid {
			t.Fatalf("tx %d flag = %s", i, res.Flag)
		}
	}
	if !net.ChannelAt(0).Watchdog().IsFlagged("org9/liar") {
		t.Fatalf("liar not flagged after 3 reports (has %d)", net.ChannelAt(0).Watchdog().Reports("org9/liar"))
	}
}

// buildEnvelopeWithLiar endorses a put on real peers and appends a forged
// endorsement.
func buildEnvelopeWithLiar(net *fabric.Network, gw *fabric.Gateway, client, liar *msp.Signer, i int) (*ledger.Transaction, error) {
	key := []byte{byte('a' + i)}
	prop, err := newProposal(client, net.ChannelAt(0).Name(), "kv", "put", [][]byte{key, []byte("v")})
	if err != nil {
		return nil, err
	}
	var tx *ledger.Transaction
	for _, p := range net.ChannelAt(0).Peers()[:2] {
		resp, err := p.Endorse(prop)
		if err != nil {
			return nil, err
		}
		if tx == nil {
			tx = &ledger.Transaction{
				ID:        prop.TxID,
				ChannelID: prop.ChannelID,
				Creator:   client.Identity,
				Payload:   ledger.TxPayload{Chaincode: "kv", Fn: "put", Args: prop.Args},
				Response:  resp.Response,
				Timestamp: prop.Timestamp,
			}
			if err := json.Unmarshal(resp.RWSetJSON, &tx.RWSet); err != nil {
				return nil, err
			}
		}
		tx.Endorsements = append(tx.Endorsements, resp.Endorsement)
	}
	forgedDigest := []byte("i-saw-something-else-" + string(rune('0'+i)))
	tx.Endorsements = append(tx.Endorsements, msp.Endorsement{
		Endorser:  liar.Identity,
		Digest:    forgedDigest,
		Signature: liar.Sign(forgedDigest),
	})
	tx.Signature = client.Sign(tx.SigningBytes())
	return tx, nil
}

// TestIntegrationIPFSGCAfterChainUnpin stores payloads, unpins one on its home node
// and garbage-collects; the unpinned payload survives on the OTHER node
// that fetched it, demonstrating replication.
func TestIntegrationIPFSGCAfterChainUnpin(t *testing.T) {
	fw := newIntegrationFramework(t, 4, nil)
	cam := registerSource(t, fw, "city", "gc-cam", true)
	client := fw.Client(cam, 0)
	det := detect.NewDetector(77)
	corpus := dataset.Generate(dataset.Config{Seed: 77, NumVideos: 1, FramesPerVideo: 2, NumDroneFlights: 1, FramesPerFlight: 1, MeanFrameKB: 8})

	frame := &corpus.Static[0].Frames[0]
	meta, _ := det.ExtractMetadata(frame)
	receipt, err := client.StoreFrame(frame, meta)
	if err != nil {
		t.Fatal(err)
	}
	// Replicate to node 1 by retrieving there.
	reader := fw.Client(cam, 1)
	if _, err := reader.RetrieveData(receipt.TxID); err != nil {
		t.Fatal(err)
	}
	// Pin on node 1 (retrieval does not pin), then GC node 0 after unpin.
	c := mustParseCid(t, receipt.CID)
	fw.Cluster.Node(1).Pin(c)
	fw.Cluster.Node(0).Unpin(c)
	if _, err := fw.Cluster.Node(0).GC(); err != nil {
		t.Fatal(err)
	}
	if fw.Cluster.Node(0).Has(c) {
		t.Fatal("GC kept unpinned content")
	}
	// The payload is still retrievable from the cluster via node 1.
	res, err := reader.RetrieveData(receipt.TxID)
	if err != nil {
		t.Fatalf("retrieval after GC: %v", err)
	}
	if !res.Verified || !bytes.Equal(res.Payload, frame.Data) {
		t.Fatal("replica corrupted")
	}
}

// TestIntegrationProvenanceSurvivesByzantineValidator stores a chain of records with
// an equivocating validator present (evicted mid-run) and verifies the
// provenance chain and Merkle inclusion afterwards.
func TestIntegrationProvenanceSurvivesByzantineValidator(t *testing.T) {
	fw := newIntegrationFramework(t, 4, map[int]consensus.Behavior{
		0: &consensus.Equivocator{Half: map[string]bool{"peer1": true}},
	})
	cam := registerSource(t, fw, "city", "byz-cam", true)
	client := fw.Client(cam, 0)
	det := detect.NewDetector(88)
	corpus := dataset.Generate(dataset.Config{Seed: 88, NumVideos: 1, FramesPerVideo: 4, NumDroneFlights: 1, FramesPerFlight: 1, MeanFrameKB: 4})

	var last string
	for i := range corpus.Static[0].Frames {
		frame := &corpus.Static[0].Frames[i]
		meta, _ := det.ExtractMetadata(frame)
		receipt, err := client.StoreFrame(frame, meta)
		if err != nil {
			t.Fatalf("store %d: %v", i, err)
		}
		last = receipt.TxID
	}
	chain, err := client.Query().Provenance(last)
	if err != nil {
		t.Fatalf("provenance: %v", err)
	}
	if err := provenance.VerifyChain(chain); err != nil {
		t.Fatal(err)
	}
	// A healthy peer's ledger proves inclusion.
	lgr := fw.Net.ChannelAt(0).Peer(1).Ledger()
	deadline := time.Now().Add(10 * time.Second)
	for !lgr.HasTx(last) && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if err := provenance.VerifyInclusion(lgr, last); err != nil {
		t.Fatal(err)
	}
}

// TestIntegrationMixedTrustWorkload runs the socialchaind-style mixed workload and
// checks the aggregate outcome: trusted sources unaffected, dishonest
// crowd sources gated, ledger consistent.
func TestIntegrationMixedTrustWorkload(t *testing.T) {
	fw := newIntegrationFramework(t, 4, nil)
	det := detect.NewDetector(55)
	corpus := dataset.Generate(dataset.Config{Seed: 55, NumVideos: 1, FramesPerVideo: 20, NumDroneFlights: 1, FramesPerFlight: 1, MeanFrameKB: 4})
	frames := corpus.Static[0].Frames

	cam := registerSource(t, fw, "city", "mix-cam", true)
	honest := registerSource(t, fw, "crowd", "mix-honest", false)
	dishonest := registerSource(t, fw, "crowd", "mix-dishonest", false)
	camClient := fw.Client(cam, 0)
	honestClient := fw.Client(honest, 0)
	dishonestClient := fw.Client(dishonest, 1)

	for round := 0; round < 6; round++ {
		f := frames[round*3]
		m, _ := det.ExtractMetadata(&f)
		if _, err := camClient.StoreFrame(&f, m); err != nil {
			t.Fatalf("camera round %d: %v", round, err)
		}
		f2 := frames[round*3+1]
		m2, _ := det.ExtractMetadata(&f2)
		m2.CameraID = "honest-phone"
		if _, err := honestClient.StoreFrame(&f2, m2); err != nil {
			t.Fatalf("honest round %d: %v", round, err)
		}
		f3 := frames[round*3+2]
		m3, _ := det.ExtractMetadata(&f3)
		m3.CameraID = "dishonest-phone"
		m3.DataHash = strings.Repeat("b", 64)
		if _, err := dishonestClient.StoreFrame(&f3, m3); err == nil {
			t.Fatalf("dishonest round %d accepted", round)
		}
	}
	hs, err := fw.TrustScore(honest.Identity.ID())
	if err != nil {
		t.Fatal(err)
	}
	ds, err := fw.TrustScore(dishonest.Identity.ID())
	if err != nil {
		t.Fatal(err)
	}
	if hs.Score <= 0.5 || hs.Rejected != 0 {
		t.Fatalf("honest state %+v", hs)
	}
	if ds.Score >= 0.3 || ds.Accepted != 0 {
		t.Fatalf("dishonest state %+v", ds)
	}
	if err := fw.Net.ChannelAt(0).Peer(0).Ledger().VerifyChain(); err != nil {
		t.Fatal(err)
	}
}
