// Package socialchain reproduces "A Blockchain-Enabled Framework for
// Storage and Retrieval of Social Data" (Parab, Pradhan, Simmhan, Paul;
// IPDPS-W/IPPS 2025, arXiv 2503.20497): a Hyperledger-Fabric-style
// permissioned blockchain storing metadata, CIDs, trust scores and
// provenance on-chain, an IPFS-style content-addressed store holding raw
// payloads off-chain, and the store/retrieve pipelines, chaincodes and
// query engine the paper describes.
//
// The implementation lives under internal/; see DESIGN.md for the system
// inventory (including the pluggable internal/storage engine layer beneath
// the world state and blockstore), EXPERIMENTS.md for the paper-vs-measured
// record, and examples/ for runnable scenarios. bench_test.go regenerates
// every figure of the paper's evaluation section.
package socialchain
